// Package affinity implements Step 2 of the paper's framework: the
// Users_Category Affiliation matrix A (eq. 4), which measures how invested
// each user is in each category from their rating and writing activity:
//
//	A_ij = ( aʳ_ij / max_j' aʳ_ij'  +  a𝑤_ij / max_j' a𝑤_ij' ) / 2
//
// where aʳ_ij counts the reviews user i rated in category j and a𝑤_ij the
// reviews user i wrote there. Each term is normalised by the user's own
// most-active category, so A values live in [0, 1] and a user's strongest
// category always scores at least 0.5 (1.0 when the same category
// maximises both activities).
package affinity

import (
	"fmt"

	"weboftrust/internal/mat"
	"weboftrust/internal/par"
	"weboftrust/internal/ratings"
)

// Mode selects which activity signals feed the affinity matrix. The
// paper's eq. 4 blends both; the single-signal modes are the A-3 ablation.
type Mode int

const (
	// Blend averages the normalised rating and writing activity (eq. 4).
	Blend Mode = iota
	// RatingsOnly uses only rating activity.
	RatingsOnly
	// WritesOnly uses only writing activity.
	WritesOnly
)

// String returns the mode's name.
func (m Mode) String() string {
	switch m {
	case Blend:
		return "blend"
	case RatingsOnly:
		return "ratings-only"
	case WritesOnly:
		return "writes-only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Valid reports whether m is a defined mode.
func (m Mode) Valid() bool { return m >= Blend && m <= WritesOnly }

// Counts holds the raw per-user per-category activity counts that eq. 4
// normalises: Ratings[u][c] = aʳ and Writes[u][c] = a𝑤.
type Counts struct {
	Ratings *mat.Dense
	Writes  *mat.Dense
}

// Count tallies the raw activity counts. Users are independent rows of
// both count matrices, so the tally shards by user across workers (<= 0
// means one per available CPU), each worker walking its users' own review
// and rating indexes. Counts are integer increments, so the result is
// identical at any worker count.
func Count(d *ratings.Dataset, workers int) Counts {
	numU, numC := d.NumUsers(), d.NumCategories()
	c := Counts{Ratings: mat.NewDense(numU, numC), Writes: mat.NewDense(numU, numC)}
	par.Do(workers, numU, func(u int) {
		wRow := c.Writes.Row(u)
		for _, rid := range d.ReviewsByWriter(ratings.UserID(u)) {
			wRow[d.Review(rid).Category]++
		}
		rRow := c.Ratings.Row(u)
		for _, rt := range d.RatingsBy(ratings.UserID(u)) {
			rRow[d.Review(rt.Review).Category]++
		}
	})
	return c
}

// Matrix computes the U x C affiliation matrix from a dataset using the
// given mode, parallelised over one worker per available CPU.
func Matrix(d *ratings.Dataset, mode Mode) (*mat.Dense, error) {
	return MatrixWorkers(d, mode, 0)
}

// MatrixWorkers is Matrix with an explicit worker count (<= 0 means one
// per available CPU). The result is identical at any worker count.
func MatrixWorkers(d *ratings.Dataset, mode Mode, workers int) (*mat.Dense, error) {
	if !mode.Valid() {
		return nil, fmt.Errorf("affinity: invalid mode %d", int(mode))
	}
	return FromCountsWorkers(Count(d, workers), mode, workers)
}

// FromCounts computes the affiliation matrix from precomputed activity
// counts, normalising each signal by the user's row maximum (eq. 4). Users
// with no activity of a given kind contribute 0 for that term.
func FromCounts(c Counts, mode Mode) (*mat.Dense, error) {
	return FromCountsWorkers(c, mode, 1)
}

// FromCountsWorkers is FromCounts sharded by user row across workers
// (<= 0 means one per available CPU). Each row is normalised
// independently, so the result is identical at any worker count.
func FromCountsWorkers(c Counts, mode Mode, workers int) (*mat.Dense, error) {
	ru, rc := c.Ratings.Dims()
	wu, wc := c.Writes.Dims()
	if ru != wu || rc != wc {
		return nil, fmt.Errorf("%w: ratings %dx%d vs writes %dx%d", mat.ErrShape, ru, rc, wu, wc)
	}
	a := mat.NewDense(ru, rc)
	par.Do(workers, ru, func(u int) {
		rRow := c.Ratings.Row(u)
		wRow := c.Writes.Row(u)
		rMax := c.Ratings.RowMax(u)
		wMax := c.Writes.RowMax(u)
		out := a.Row(u)
		for j := 0; j < rc; j++ {
			var rTerm, wTerm float64
			if rMax > 0 {
				rTerm = rRow[j] / rMax
			}
			if wMax > 0 {
				wTerm = wRow[j] / wMax
			}
			switch mode {
			case Blend:
				out[j] = (rTerm + wTerm) / 2
			case RatingsOnly:
				out[j] = rTerm
			case WritesOnly:
				out[j] = wTerm
			}
		}
	})
	return a, nil
}
