package synth

import (
	"math"
	"math/rand/v2"
	"sort"

	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
)

// UserLatent is the hidden state of one synthetic user — the quantities
// the framework tries to recover from observable rating behaviour.
type UserLatent struct {
	// Interests is the user's affinity distribution over categories
	// (sums to 1).
	Interests []float64
	// Skill drives the true quality of the user's reviews.
	Skill float64
	// Conscientiousness drives how accurately the user rates reviews.
	Conscientiousness float64
	// Generosity scales the user's propensity to declare trust.
	Generosity float64
	// Activity is the user's overall volume multiplier (power-law).
	Activity float64
	// Bias is the user's systematic rating offset.
	Bias float64
}

// GroundTruth carries the latent state alongside a generated dataset, for
// evaluation only — the pipeline never sees it.
type GroundTruth struct {
	// Latents is indexed by UserID.
	Latents []UserLatent
	// ReviewQuality is the true quality of each review, by ReviewID.
	ReviewQuality []float64
	// Advisors are the simulated editorial picks of top raters
	// (Epinions' "Advisors"), and TopReviewers the top writers.
	Advisors     []ratings.UserID
	TopReviewers []ratings.UserID
	// CategoryExpertise[u][c] is the latent expertise exposure of user u
	// in category c: skill times the user's share of reviews written
	// there. This is what trust formation responds to.
	CategoryExpertise [][]float64
}

// IsAdvisor reports whether u is one of the simulated Advisors.
func (g *GroundTruth) IsAdvisor(u ratings.UserID) bool {
	for _, a := range g.Advisors {
		if a == u {
			return true
		}
	}
	return false
}

// IsTopReviewer reports whether u is one of the simulated Top Reviewers.
func (g *GroundTruth) IsTopReviewer(u ratings.UserID) bool {
	for _, a := range g.TopReviewers {
		if a == u {
			return true
		}
	}
	return false
}

// Generate builds a synthetic community from the configuration. The same
// configuration always yields the same dataset and ground truth.
func Generate(cfg Config) (*ratings.Dataset, *GroundTruth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := stats.NewRand(cfg.Seed)
	b := ratings.NewBuilder()
	numC := len(cfg.Categories)

	catWeights := make([]float64, numC)
	for c, spec := range cfg.Categories {
		b.AddCategory(spec.Name)
		catWeights[c] = spec.Weight
	}

	// Objects: proportional split with at least one per category.
	objectsByCat := splitProportional(cfg.TotalObjects, catWeights)
	objectIDs := make([][]ratings.ObjectID, numC)
	for c := 0; c < numC; c++ {
		for k := 0; k < objectsByCat[c]; k++ {
			oid, err := b.AddObject(ratings.CategoryID(c), "")
			if err != nil {
				return nil, nil, err
			}
			objectIDs[c] = append(objectIDs[c], oid)
		}
	}

	// Users and latents.
	b.AddUsers(cfg.NumUsers)
	gt := &GroundTruth{Latents: make([]UserLatent, cfg.NumUsers)}
	for u := range gt.Latents {
		gt.Latents[u] = sampleLatent(rng, cfg, catWeights)
	}

	g := &generator{cfg: cfg, rng: rng, b: b, gt: gt, objectIDs: objectIDs, numC: numC}
	g.generateReviews()
	g.computeCategoryExpertise()
	g.generateRatings()
	g.generateTrust()
	g.pickEditorial()

	return b.Build(), gt, nil
}

type reviewRec struct {
	id       ratings.ReviewID
	writer   ratings.UserID
	category int
	trueQ    float64
	numRated int
}

type generator struct {
	cfg       Config
	rng       *rand.Rand
	b         *ratings.Builder
	gt        *GroundTruth
	objectIDs [][]ratings.ObjectID
	numC      int

	reviews      []reviewRec
	reviewsByCat [][]int // indices into reviews

	ratingsPerUser []int
	reviewsPerUser []int

	// conn aggregates (rater, writer) -> rating count and sum during
	// generation, to drive trust formation.
	conn map[uint64]*connAgg
}

type connAgg struct {
	count int
	sum   float64
	// firstAt is the rating sequence number at which the connection
	// formed; late connections are too recent to have earned trust.
	firstAt int
}

func connKey(a, b ratings.UserID) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func sampleLatent(rng *rand.Rand, cfg Config, catWeights []float64) UserLatent {
	numC := len(catWeights)
	l := UserLatent{
		Interests:         make([]float64, numC),
		Skill:             stats.Beta(rng, cfg.SkillAlpha, cfg.SkillBeta),
		Conscientiousness: stats.Beta(rng, cfg.ConscAlpha, cfg.ConscBeta),
		Generosity:        stats.Beta(rng, cfg.GenerosityAlpha, cfg.GenerosityBeta),
		Activity:          stats.Pareto(rng, 1, cfg.ActivityMax, cfg.ActivityTail),
		Bias:              stats.Normal(rng, 0, cfg.RaterBiasStdDev),
	}
	// Non-adoption of the explicit trust feature concentrates among light
	// users: heavily engaged members almost always maintain a trust list,
	// casual ones rarely do. This keeps the rating-mass-weighted trust
	// coverage high (as in the paper's crawl) while most *users* still
	// have empty trust lists — the sparsity the paper motivates.
	if rng.Float64() < cfg.ZeroTrustFrac*math.Exp(-l.Activity/50) {
		l.Generosity = 0
	}
	m := 1 + rng.IntN(cfg.MaxInterests)
	remaining := make([]float64, numC)
	copy(remaining, catWeights)
	var total float64
	for c := 0; c < m; c++ {
		pick := stats.WeightedChoice(rng, remaining)
		if pick < 0 {
			break
		}
		w := stats.Gamma(rng, 1)
		l.Interests[pick] = w
		total += w
		remaining[pick] = 0
	}
	if total > 0 {
		for c := range l.Interests {
			l.Interests[c] /= total
		}
	}
	return l
}

// splitProportional divides total into len(weights) non-negative parts
// proportional to weights, each at least 1, summing exactly to total
// (assuming total >= len(weights)).
func splitProportional(total int, weights []float64) []int {
	n := len(weights)
	out := make([]int, n)
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	assigned := 0
	for i, w := range weights {
		out[i] = 1 + int(float64(total-n)*w/wsum)
		assigned += out[i]
	}
	// Distribute the rounding remainder to the largest categories.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	for k := 0; assigned < total; k = (k + 1) % n {
		out[order[k]]++
		assigned++
	}
	return out
}

func (g *generator) generateReviews() {
	cfg := g.cfg
	totalReviews := int(math.Round(float64(cfg.NumUsers) * cfg.MeanReviewsPerUser))
	// Writers weighted by activity and skill: skilled, active users write
	// more, which is what makes Epinions-style Top Reviewers exist.
	weights := make([]float64, cfg.NumUsers)
	for u, l := range g.gt.Latents {
		weights[u] = l.Activity * (0.25 + 0.75*l.Skill)
	}
	writerSampler := stats.NewSampler(weights)
	g.reviewsByCat = make([][]int, g.numC)
	g.reviewsPerUser = make([]int, cfg.NumUsers)

	for n := 0; n < totalReviews; n++ {
		// A few attempts to find a (writer, object) pair not yet used.
		for attempt := 0; attempt < 8; attempt++ {
			writer := ratings.UserID(writerSampler.Draw(g.rng))
			l := &g.gt.Latents[writer]
			cat := stats.WeightedChoice(g.rng, l.Interests)
			if cat < 0 {
				continue
			}
			objs := g.objectIDs[cat]
			obj := objs[g.rng.IntN(len(objs))]
			if g.b.HasReview(writer, obj) {
				continue
			}
			rid, err := g.b.AddReview(writer, obj)
			if err != nil {
				continue // defensive; HasReview should have caught it
			}
			trueQ := stats.NormalClamped01(g.rng, l.Skill, g.cfg.QualityNoise)
			g.gt.ReviewQuality = append(g.gt.ReviewQuality, trueQ)
			rec := reviewRec{id: rid, writer: writer, category: cat, trueQ: trueQ}
			g.reviews = append(g.reviews, rec)
			g.reviewsByCat[cat] = append(g.reviewsByCat[cat], len(g.reviews)-1)
			g.reviewsPerUser[writer]++
			break
		}
	}
}

func (g *generator) computeCategoryExpertise() {
	exp := make([][]float64, g.cfg.NumUsers)
	for u := range exp {
		exp[u] = make([]float64, g.numC)
	}
	for _, rec := range g.reviews {
		exp[rec.writer][rec.category]++
	}
	// Expertise exposure = skill saturating in the number of reviews
	// written in the category: the community perceives experts as those
	// who write *many* good reviews there (the paper's Section I
	// hypothesis), not one lucky review.
	for u := range exp {
		skill := g.gt.Latents[u].Skill
		for c, count := range exp[u] {
			if count > 0 {
				exp[u][c] = skill * count / (count + 1)
			}
		}
	}
	g.gt.CategoryExpertise = exp
}

func (g *generator) generateRatings() {
	cfg := g.cfg
	totalRatings := int(math.Round(float64(cfg.NumUsers) * cfg.MeanRatingsPerUser))
	weights := make([]float64, cfg.NumUsers)
	for u, l := range g.gt.Latents {
		weights[u] = l.Activity
	}
	raterSampler := stats.NewSampler(weights)
	g.ratingsPerUser = make([]int, cfg.NumUsers)
	g.conn = make(map[uint64]*connAgg)

	for n := 0; n < totalRatings; n++ {
		for attempt := 0; attempt < 8; attempt++ {
			rater := ratings.UserID(raterSampler.Draw(g.rng))
			l := &g.gt.Latents[rater]
			cat := stats.WeightedChoice(g.rng, l.Interests)
			if cat < 0 || len(g.reviewsByCat[cat]) == 0 {
				continue
			}
			rec := g.pickReview(cat)
			if rec == nil || rec.writer == rater || g.b.HasRating(rater, rec.id) {
				continue
			}
			noise := cfg.RatingNoiseBase + cfg.RatingNoiseSlope*(1-l.Conscientiousness)
			observed := ratings.QuantizeRating(stats.Clamp01(rec.trueQ + l.Bias + stats.Normal(g.rng, 0, noise)))
			if err := g.b.AddRating(rater, rec.id, observed); err != nil {
				continue
			}
			rec.numRated++
			g.ratingsPerUser[rater]++
			key := connKey(rater, rec.writer)
			a := g.conn[key]
			if a == nil {
				a = &connAgg{firstAt: n}
				g.conn[key] = a
			}
			a.count++
			a.sum += observed
			break
		}
	}
}

// pickReview implements preferential attachment with a quality prior: draw
// several candidate reviews uniformly from the category and keep the one
// with the most ratings so far (ties broken by true quality). Popular,
// well-written reviews accumulate raters the way Epinions traffic
// concentrates on its top reviewers, while staying O(1) per draw.
func (g *generator) pickReview(cat int) *reviewRec {
	pool := g.reviewsByCat[cat]
	best := &g.reviews[pool[g.rng.IntN(len(pool))]]
	for k := 1; k < 5; k++ {
		cand := &g.reviews[pool[g.rng.IntN(len(pool))]]
		if tournamentScore(cand) > tournamentScore(best) {
			best = cand
		}
	}
	return best
}

// tournamentScore ranks a review for reader attention: accumulated ratings
// (rich-get-richer) with a quality prior worth a handful of ratings, so
// high-skill writers attract the early traffic that later snowballs.
func tournamentScore(r *reviewRec) float64 {
	return float64(r.numRated) + 8*r.trueQ
}

// exposure computes s_ij: how much of writer j's latent expertise falls in
// rater i's interest categories.
func (g *generator) exposure(i, j ratings.UserID) float64 {
	var s float64
	li := g.gt.Latents[i].Interests
	le := g.gt.CategoryExpertise[j]
	for c, w := range li {
		s += w * le[c]
	}
	return s
}

func (g *generator) generateTrust() {
	cfg := g.cfg
	// Group each user's direct connections, oldest first.
	type connRec struct {
		to      ratings.UserID
		avg     float64
		firstAt int
	}
	byUser := make([][]connRec, cfg.NumUsers)
	for key, agg := range g.conn {
		from := ratings.UserID(key >> 32)
		byUser[from] = append(byUser[from], connRec{
			to:      ratings.UserID(uint32(key)),
			avg:     agg.sum / float64(agg.count),
			firstAt: agg.firstAt,
		})
	}
	totalRatings := int(math.Round(float64(cfg.NumUsers) * cfg.MeanRatingsPerUser))
	trustCutoff := int(float64(totalRatings) * (1 - cfg.RecentConnectionFrac))
	trustPerUser := make([]int, cfg.NumUsers)

	// In-R trust is budget-constrained: a user expresses trust toward
	// roughly generosity * |connections| of their established (non-recent)
	// connections, sampled without replacement with weights driven by
	// latent exposure and experienced rating quality. Users with many
	// high-exposure connections therefore leave many of them untrusted —
	// the paper's "would become trust in the future" population.
	for u := 0; u < cfg.NumUsers; u++ {
		conns := byUser[u]
		if len(conns) == 0 {
			continue
		}
		sort.Slice(conns, func(a, b int) bool { return conns[a].to < conns[b].to })
		from := ratings.UserID(u)
		eligible := conns[:0:0]
		for _, c := range conns {
			if c.firstAt < trustCutoff {
				eligible = append(eligible, c)
			}
		}
		budget := int(math.Round(g.gt.Latents[u].Generosity * float64(len(eligible))))
		if budget == 0 || len(eligible) == 0 {
			continue
		}
		if budget > len(eligible) {
			budget = len(eligible)
		}
		// Efraimidis–Spirakis weighted sampling without replacement:
		// keep the budget smallest exponential keys -log(u)/w.
		type keyed struct {
			idx int
			key float64
		}
		keys := make([]keyed, len(eligible))
		for i, c := range eligible {
			s := g.exposure(from, c.to)
			w := cfg.TrustBase + cfg.TrustAffinityWeight*sNorm(s) +
				cfg.TrustRatingWeight*(c.avg-0.6)/0.4
			if w < 1e-6 {
				w = 1e-6
			}
			u01 := g.rng.Float64()
			for u01 == 0 {
				u01 = g.rng.Float64()
			}
			keys[i] = keyed{idx: i, key: -math.Log(u01) / w}
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a].key < keys[b].key })
		for _, kk := range keys[:budget] {
			if err := g.b.AddTrust(from, eligible[kk.idx].to); err == nil {
				trustPerUser[u]++
			}
		}
	}

	// Out-of-band (T−R) trust: word-of-mouth edges toward experts in the
	// user's interest categories, independent of direct connections.
	expertSamplers := make([]*stats.Sampler, g.numC)
	for c := 0; c < g.numC; c++ {
		w := make([]float64, cfg.NumUsers)
		for u := 0; u < cfg.NumUsers; u++ {
			w[u] = g.gt.CategoryExpertise[u][c]
		}
		expertSamplers[c] = stats.NewSampler(w) // nil if no experts
	}
	for u := 0; u < cfg.NumUsers; u++ {
		want := int(math.Round(cfg.OutOfBandTrustFrac * float64(trustPerUser[u])))
		from := ratings.UserID(u)
		for k := 0; k < want; k++ {
			for attempt := 0; attempt < 8; attempt++ {
				cat := stats.WeightedChoice(g.rng, g.gt.Latents[u].Interests)
				if cat < 0 || expertSamplers[cat] == nil {
					break
				}
				to := ratings.UserID(expertSamplers[cat].Draw(g.rng))
				if to == from || g.conn[connKey(from, to)] != nil || g.b.HasTrust(from, to) {
					continue
				}
				if err := g.b.AddTrust(from, to); err == nil {
					break
				}
			}
		}
	}
}

// sNorm rescales raw exposure (typically small, bounded by max skill) into
// a usable [0,1] driver with diminishing returns.
func sNorm(s float64) float64 {
	return 1 - math.Exp(-4*s)
}

func (g *generator) pickEditorial() {
	cfg := g.cfg
	type scored struct {
		u     ratings.UserID
		score float64
	}
	var raters, writers []scored
	for u := 0; u < cfg.NumUsers; u++ {
		l := g.gt.Latents[u]
		if g.ratingsPerUser[u] > 0 {
			score := l.Conscientiousness*math.Log1p(float64(g.ratingsPerUser[u])) +
				stats.Normal(g.rng, 0, cfg.SelectionNoise)
			raters = append(raters, scored{u: ratings.UserID(u), score: score})
		}
		if g.reviewsPerUser[u] > 0 {
			score := l.Skill*math.Log1p(float64(g.reviewsPerUser[u])) +
				stats.Normal(g.rng, 0, cfg.SelectionNoise)
			writers = append(writers, scored{u: ratings.UserID(u), score: score})
		}
	}
	pick := func(list []scored, n int) []ratings.UserID {
		sort.Slice(list, func(a, b int) bool {
			if list[a].score != list[b].score {
				return list[a].score > list[b].score
			}
			return list[a].u < list[b].u
		})
		if n > len(list) {
			n = len(list)
		}
		out := make([]ratings.UserID, n)
		for i := 0; i < n; i++ {
			out[i] = list[i].u
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out
	}
	g.gt.Advisors = pick(raters, cfg.NumAdvisors)
	g.gt.TopReviewers = pick(writers, cfg.NumTopReviewers)
}
