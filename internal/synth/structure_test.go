package synth

import (
	"sort"
	"testing"

	"weboftrust/internal/graph"
)

// trustGraph builds the unweighted directed graph of a dataset's
// explicit trust edges — the structure the macro-/micro-structure
// literature measures, and the baseline attack cohorts are injected
// into.
func trustGraph(t *testing.T, cfg Config) *graph.Graph {
	t.Helper()
	d, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]graph.Edge, 0, d.NumTrustEdges())
	for _, e := range d.TrustEdges() {
		edges = append(edges, graph.Edge{From: int(e.From), To: int(e.To), Weight: 1})
	}
	g, err := graph.New(d.NumUsers(), edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTrustGraphMacroStructure validates the generator against the
// macro-structure targets real trust networks exhibit, so attack
// cohorts are measured against a structurally honest baseline rather
// than a uniform random graph:
//
//   - a heavy degree tail: the most-trusted user collects an order of
//     magnitude more in-edges than the mean, and the top decile of
//     users holds a large share of all trust received (power-law-ish
//     concentration, not Poisson);
//   - clustering far above the Erdős–Rényi baseline: trust forms
//     triangles (interest communities), so the mean local clustering
//     coefficient must beat the graph's density many times over;
//   - reciprocity above random: mutual trust is rare in absolute terms
//     here (edges follow interest overlap, not friendship), but still
//     must exceed the density-level reciprocity a random digraph with
//     the same edge count would show.
//
// Generation is seeded, so these are exact regression pins with wide
// margins (each bound sits at roughly half the measured value), not
// flaky statistical tests. Measured at pin time: small maxIn/mean 15.0,
// top-decile share 0.55, clustering/density 12.0, reciprocity/density
// 2.5; medium 21.8 / 0.59 / 38.2 / 9.1.
func TestTrustGraphMacroStructure(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config

		minMaxInOverMean  float64
		minTopDecileShare float64
		minClustOverDens  float64
		minRecipOverDens  float64
	}{
		{"small", Small(), 7, 0.35, 6, 1.7},
		{"medium", Medium(), 10, 0.40, 15, 4.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := trustGraph(t, tc.cfg)
			n := g.NumNodes()
			ds := g.Degrees()
			if ds.Edges == 0 {
				t.Fatal("no trust edges generated")
			}
			mean := float64(ds.Edges) / float64(n)
			density := float64(ds.Edges) / float64(n*(n-1))

			if ratio := float64(ds.MaxInDegree) / mean; ratio < tc.minMaxInOverMean {
				t.Errorf("max in-degree is %.1f× the mean, want >= %.1f× (degree tail too light)",
					ratio, tc.minMaxInOverMean)
			}
			ins := make([]int, n)
			total := 0
			for v := 0; v < n; v++ {
				ins[v] = g.InDegree(v)
				total += ins[v]
			}
			sort.Sort(sort.Reverse(sort.IntSlice(ins)))
			top := 0
			for i := 0; i < n/10; i++ {
				top += ins[i]
			}
			if share := float64(top) / float64(total); share < tc.minTopDecileShare {
				t.Errorf("top decile holds %.3f of in-edges, want >= %.3f", share, tc.minTopDecileShare)
			}

			sample := make([]int, n)
			for v := range sample {
				sample[v] = v
			}
			if ratio := g.MeanClustering(sample) / density; ratio < tc.minClustOverDens {
				t.Errorf("clustering is %.1f× density, want >= %.1f× (no community structure)",
					ratio, tc.minClustOverDens)
			}
			if ratio := g.Reciprocity() / density; ratio < tc.minRecipOverDens {
				t.Errorf("reciprocity is %.1f× density, want >= %.1f× (mutual trust at random level)",
					ratio, tc.minRecipOverDens)
			}
		})
	}
}
