package synth

import (
	"errors"
	"math"
	"testing"

	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
)

func TestGenerateSmall(t *testing.T) {
	cfg := Small()
	d, gt, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != cfg.NumUsers {
		t.Errorf("users = %d, want %d", d.NumUsers(), cfg.NumUsers)
	}
	if d.NumCategories() != len(cfg.Categories) {
		t.Errorf("categories = %d, want %d", d.NumCategories(), len(cfg.Categories))
	}
	if d.NumObjects() != cfg.TotalObjects {
		t.Errorf("objects = %d, want %d", d.NumObjects(), cfg.TotalObjects)
	}
	// Volumes land near the configured means (collisions shave a little).
	wantReviews := float64(cfg.NumUsers) * cfg.MeanReviewsPerUser
	if got := float64(d.NumReviews()); got < 0.7*wantReviews || got > 1.05*wantReviews {
		t.Errorf("reviews = %v, want ~%v", got, wantReviews)
	}
	wantRatings := float64(cfg.NumUsers) * cfg.MeanRatingsPerUser
	if got := float64(d.NumRatings()); got < 0.7*wantRatings || got > 1.05*wantRatings {
		t.Errorf("ratings = %v, want ~%v", got, wantRatings)
	}
	if d.NumTrustEdges() == 0 {
		t.Error("no trust edges generated")
	}
	if len(gt.Latents) != cfg.NumUsers || len(gt.ReviewQuality) != d.NumReviews() {
		t.Error("ground truth sizes wrong")
	}
	if len(gt.Advisors) != cfg.NumAdvisors || len(gt.TopReviewers) != cfg.NumTopReviewers {
		t.Errorf("editorial picks = %d/%d, want %d/%d",
			len(gt.Advisors), len(gt.TopReviewers), cfg.NumAdvisors, cfg.NumTopReviewers)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Small()
	d1, gt1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, gt2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1.NumReviews() != d2.NumReviews() || d1.NumRatings() != d2.NumRatings() ||
		d1.NumTrustEdges() != d2.NumTrustEdges() {
		t.Fatal("same seed produced different datasets")
	}
	for i, r := range d1.Ratings() {
		r2 := d2.Ratings()[i]
		if r != r2 {
			t.Fatalf("rating %d differs: %+v vs %+v", i, r, r2)
		}
	}
	for u := range gt1.Latents {
		if gt1.Latents[u].Skill != gt2.Latents[u].Skill {
			t.Fatal("latents differ")
		}
	}
	cfg2 := cfg
	cfg2.Seed = 999
	d3, _, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if d3.NumRatings() == d1.NumRatings() && d3.NumTrustEdges() == d1.NumTrustEdges() &&
		d3.NumReviews() == d1.NumReviews() {
		// Sizes could coincide; compare content.
		same := true
		for i, r := range d1.Ratings() {
			if r != d3.Ratings()[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.NumUsers = 1 },
		func(c *Config) { c.Categories = nil },
		func(c *Config) { c.TotalObjects = 0 },
		func(c *Config) { c.MeanReviewsPerUser = 0 },
		func(c *Config) { c.MeanRatingsPerUser = -1 },
		func(c *Config) { c.MaxInterests = 0 },
		func(c *Config) { c.MaxInterests = 99 },
		func(c *Config) { c.SkillAlpha = 0 },
		func(c *Config) { c.ConscBeta = -1 },
		func(c *Config) { c.GenerosityAlpha = 0 },
		func(c *Config) { c.ActivityTail = 0 },
		func(c *Config) { c.ActivityMax = 1 },
		func(c *Config) { c.QualityNoise = -0.1 },
		func(c *Config) { c.OutOfBandTrustFrac = -1 },
		func(c *Config) { c.NumAdvisors = -1 },
		func(c *Config) { c.Categories[0].Weight = 0 },
	}
	for i, mutate := range mutations {
		cfg := Small()
		cfg.Categories = append([]CategorySpec(nil), cfg.Categories...)
		mutate(&cfg)
		if _, _, err := Generate(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("mutation %d: error = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestLatentInvariants(t *testing.T) {
	cfg := Small()
	_, gt, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u, l := range gt.Latents {
		var sum float64
		positive := 0
		for _, w := range l.Interests {
			if w < 0 {
				t.Fatalf("user %d: negative interest", u)
			}
			if w > 0 {
				positive++
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("user %d: interests sum to %v", u, sum)
		}
		if positive < 1 || positive > cfg.MaxInterests {
			t.Fatalf("user %d: %d interest categories, want 1..%d", u, positive, cfg.MaxInterests)
		}
		if l.Skill < 0 || l.Skill > 1 || l.Conscientiousness < 0 || l.Conscientiousness > 1 ||
			l.Generosity < 0 || l.Generosity > 1 {
			t.Fatalf("user %d: latent out of [0,1]: %+v", u, l)
		}
		if l.Activity < 1 || l.Activity > cfg.ActivityMax {
			t.Fatalf("user %d: activity %v out of range", u, l.Activity)
		}
	}
	for i, q := range gt.ReviewQuality {
		if q < 0 || q > 1 {
			t.Fatalf("review %d: true quality %v out of [0,1]", i, q)
		}
	}
}

func TestTrustStructure(t *testing.T) {
	d, _, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	// Both T∩R and T−R must be non-empty (Fig. 3's structure).
	if s.TrustInR == 0 {
		t.Error("no trust edges inside R")
	}
	if s.TrustOutsideR == 0 {
		t.Error("no trust edges outside R (word-of-mouth)")
	}
	// Most trust should arise over direct connections.
	if s.TrustInR <= s.TrustOutsideR {
		t.Errorf("TrustInR=%d should exceed TrustOutsideR=%d", s.TrustInR, s.TrustOutsideR)
	}
}

func TestCategorySizesFollowWeights(t *testing.T) {
	d, _, err := Generate(Medium())
	if err != nil {
		t.Fatal(err)
	}
	// Dramas (weight 18879) must have more reviews than Horror/Suspense
	// (weight 341).
	var dramas, horror ratings.CategoryID = -1, -1
	for c := 0; c < d.NumCategories(); c++ {
		switch d.CategoryName(ratings.CategoryID(c)) {
		case "Dramas":
			dramas = ratings.CategoryID(c)
		case "Horror/Suspense":
			horror = ratings.CategoryID(c)
		}
	}
	if dramas < 0 || horror < 0 {
		t.Fatal("paper genres missing")
	}
	if len(d.ReviewsInCategory(dramas)) <= len(d.ReviewsInCategory(horror)) {
		t.Errorf("Dramas reviews (%d) should exceed Horror/Suspense (%d)",
			len(d.ReviewsInCategory(dramas)), len(d.ReviewsInCategory(horror)))
	}
}

func TestAdvisorsAreConscientiousAndActive(t *testing.T) {
	d, gt, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	var advisorConsc, allConsc []float64
	for u := 0; u < d.NumUsers(); u++ {
		if len(d.RatingsBy(ratings.UserID(u))) == 0 {
			continue
		}
		c := gt.Latents[u].Conscientiousness
		if gt.IsAdvisor(ratings.UserID(u)) {
			advisorConsc = append(advisorConsc, c)
		}
		allConsc = append(allConsc, c)
	}
	if stats.Mean(advisorConsc) <= stats.Mean(allConsc) {
		t.Errorf("advisors mean conscientiousness %v should exceed population %v",
			stats.Mean(advisorConsc), stats.Mean(allConsc))
	}
	// Advisors rate far more than the average rater.
	var advisorN, allN []float64
	for u := 0; u < d.NumUsers(); u++ {
		n := float64(len(d.RatingsBy(ratings.UserID(u))))
		if n == 0 {
			continue
		}
		if gt.IsAdvisor(ratings.UserID(u)) {
			advisorN = append(advisorN, n)
		}
		allN = append(allN, n)
	}
	if stats.Mean(advisorN) <= 2*stats.Mean(allN) {
		t.Errorf("advisors mean ratings %v should be well above population %v",
			stats.Mean(advisorN), stats.Mean(allN))
	}
}

func TestTopReviewersAreSkilled(t *testing.T) {
	d, gt, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	var topSkill, allSkill []float64
	for u := 0; u < d.NumUsers(); u++ {
		if len(d.ReviewsByWriter(ratings.UserID(u))) == 0 {
			continue
		}
		s := gt.Latents[u].Skill
		if gt.IsTopReviewer(ratings.UserID(u)) {
			topSkill = append(topSkill, s)
		}
		allSkill = append(allSkill, s)
	}
	if stats.Mean(topSkill) <= stats.Mean(allSkill) {
		t.Errorf("top reviewers mean skill %v should exceed population %v",
			stats.Mean(topSkill), stats.Mean(allSkill))
	}
}

func TestRatingsTrackTrueQuality(t *testing.T) {
	// Observed average rating of a review should correlate with its true
	// quality — the signal the whole framework depends on.
	d, gt, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	var avgObs, trueQ []float64
	for r := 0; r < d.NumReviews(); r++ {
		rs := d.RatingsOn(ratings.ReviewID(r))
		if len(rs) < 2 {
			continue
		}
		var sum float64
		for _, rt := range rs {
			sum += rt.Value
		}
		avgObs = append(avgObs, sum/float64(len(rs)))
		trueQ = append(trueQ, gt.ReviewQuality[r])
	}
	if len(avgObs) < 30 {
		t.Fatalf("too few multi-rated reviews (%d) to test correlation", len(avgObs))
	}
	if corr := stats.Pearson(avgObs, trueQ); corr < 0.6 {
		t.Errorf("observed-vs-true quality correlation = %v, want >= 0.6", corr)
	}
}

func TestSplitProportional(t *testing.T) {
	out := splitProportional(10, []float64{1, 1, 8})
	if len(out) != 3 {
		t.Fatal("wrong length")
	}
	total := 0
	for _, v := range out {
		if v < 1 {
			t.Errorf("part %d below minimum 1", v)
		}
		total += v
	}
	if total != 10 {
		t.Errorf("total = %d, want 10", total)
	}
	if out[2] <= out[0] {
		t.Errorf("heaviest weight should get most: %v", out)
	}
}

func TestGroundTruthHelpers(t *testing.T) {
	_, gt, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(gt.Advisors) == 0 || len(gt.TopReviewers) == 0 {
		t.Fatal("no editorial picks")
	}
	if !gt.IsAdvisor(gt.Advisors[0]) {
		t.Error("IsAdvisor(first advisor) = false")
	}
	if !gt.IsTopReviewer(gt.TopReviewers[0]) {
		t.Error("IsTopReviewer(first pick) = false")
	}
	// A non-pick: find one.
	for u := ratings.UserID(0); int(u) < len(gt.Latents); u++ {
		if !gt.IsAdvisor(u) {
			break
		}
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := Small()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
