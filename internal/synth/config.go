// Package synth generates synthetic Epinions-like review communities with
// known latent structure. It stands in for the paper's Epinions Video & DVD
// crawl (see DESIGN.md §2): users have latent interest profiles over the
// paper's 12 sub-category genres, latent writing skill, latent rating
// conscientiousness and power-law activity; reviews inherit quality from
// their writer's skill; ratings observe that quality through
// conscientiousness-dependent noise on the five-level scale; and a ground-
// truth web of trust is generated from interest-weighted expertise exposure
// plus word-of-mouth edges outside the direct-connection matrix, with
// per-user generosity.
//
// Because the generator's causal story matches the assumptions the paper's
// framework exploits, the qualitative results of the paper's evaluation
// (Tables 2-4, Fig. 3) are reproducible on its output while every quantity
// remains laptop-scale and seed-deterministic.
package synth

import (
	"errors"
	"fmt"
)

// ErrBadConfig reports an invalid generator configuration.
var ErrBadConfig = errors.New("synth: invalid configuration")

// CategorySpec names a category and weights its share of objects, reviews
// and user interest.
type CategorySpec struct {
	Name   string
	Weight float64
}

// PaperGenres returns the 12 Video & DVD sub-categories of the paper's
// Table 2, weighted by the rater counts reported there, so the synthetic
// category size distribution mirrors the crawl's.
func PaperGenres() []CategorySpec {
	return []CategorySpec{
		{Name: "Action/Adventure", Weight: 11940},
		{Name: "Adult/Audience", Weight: 946},
		{Name: "Comedies", Weight: 14406},
		{Name: "Dramas", Weight: 18879},
		{Name: "Educations", Weight: 3211},
		{Name: "Foreign films", Weight: 4473},
		{Name: "Horror/Suspense", Weight: 341},
		{Name: "Musical", Weight: 4420},
		{Name: "Religious", Weight: 1189},
		{Name: "Science/Fiction", Weight: 9041},
		{Name: "Sports/Recreation", Weight: 3365},
		{Name: "Westerns", Weight: 2041},
	}
}

// Config parameterises the generator. Use a preset (Small, Medium,
// PaperScale) and override fields as needed.
type Config struct {
	// Seed drives every random choice; identical configs produce
	// identical datasets.
	Seed uint64
	// NumUsers is the community size.
	NumUsers int
	// Categories defines the category taxonomy and relative sizes.
	Categories []CategorySpec
	// TotalObjects is the number of reviewable objects, split across
	// categories proportionally to their weights (at least 1 each).
	TotalObjects int

	// MeanReviewsPerUser and MeanRatingsPerUser set the expected volume
	// of reviews and ratings; actual per-user counts follow the activity
	// distribution. Ratings should be much larger, as the paper notes.
	MeanReviewsPerUser float64
	MeanRatingsPerUser float64

	// MaxInterests caps how many categories a user cares about.
	MaxInterests int

	// SkillAlpha/Beta shape the Beta distribution of latent writing
	// skill; ConscAlpha/Beta likewise for rating conscientiousness;
	// GenerosityAlpha/Beta for trust generosity.
	SkillAlpha, SkillBeta           float64
	ConscAlpha, ConscBeta           float64
	GenerosityAlpha, GenerosityBeta float64
	// ZeroTrustFrac is the fraction of users who never use the explicit
	// trust feature at all (generosity 0). Real webs of trust are sparse
	// mostly because of such users — the paper's core motivation.
	ZeroTrustFrac float64

	// ActivityTail is the bounded-Pareto tail index of user activity
	// (smaller = heavier tail); ActivityMax bounds it.
	ActivityTail, ActivityMax float64

	// QualityNoise is the stddev of a review's true quality around the
	// writer's skill.
	QualityNoise float64
	// RatingNoiseBase + RatingNoiseSlope*(1-conscientiousness) is the
	// stddev of a rater's observation noise; RaterBiasStdDev is the
	// stddev of a rater's systematic bias.
	RatingNoiseBase, RatingNoiseSlope, RaterBiasStdDev float64

	// Trust model: an edge i->j over a direct connection appears with
	// probability generosity_i * clamp01(TrustBase +
	// TrustAffinityWeight*s_ij + TrustRatingWeight*(avgRating-0.6)/0.4)
	// where s_ij is the latent interest-expertise exposure.
	TrustBase, TrustAffinityWeight, TrustRatingWeight float64
	// OutOfBandTrustFrac adds roughly this fraction of extra trust edges
	// per user outside their direct connections (the paper's T−R set),
	// sampled by interest-weighted latent expertise (word of mouth).
	OutOfBandTrustFrac float64
	// RecentConnectionFrac is the fraction of the rating stream at the
	// end of which newly formed direct connections are "too recent" to
	// have earned explicit trust yet. This models the temporal lag the
	// paper invokes when it finds its high-T̂ false positives in R−T:
	// connections its framework expects "would become trust connectivity
	// in the future". Must be in [0, 1).
	RecentConnectionFrac float64

	// NumAdvisors / NumTopReviewers are the editorial pick counts (22 and
	// 40 in the paper); SelectionNoise blurs the picks to mimic human
	// judgement.
	NumAdvisors, NumTopReviewers int
	SelectionNoise               float64
}

// Small returns a fast configuration for unit and integration tests:
// 4 categories, 300 users.
func Small() Config {
	c := base()
	c.NumUsers = 300
	c.Categories = []CategorySpec{
		{Name: "movies", Weight: 6},
		{Name: "books", Weight: 3},
		{Name: "music", Weight: 2},
		{Name: "games", Weight: 1},
	}
	c.TotalObjects = 120
	c.NumAdvisors = 8
	c.NumTopReviewers = 12
	return c
}

// Medium returns the default configuration for examples and component
// benchmarks: the 12 paper genres over 2,000 users.
func Medium() Config {
	c := base()
	c.NumUsers = 2000
	c.TotalObjects = 600
	return c
}

// Large returns the scale-up configuration the parallel-pipeline
// benchmarks run: 6,000 users over 36 categories — each paper genre split
// into three audience tiers — so the category axis the pipeline shards on
// is wide enough to keep many workers busy and to expose how incremental
// updates scale with category count.
func Large() Config {
	c := base()
	c.NumUsers = 6000
	c.TotalObjects = 2160
	c.MeanRatingsPerUser = 35
	c.MaxInterests = 6
	var cats []CategorySpec
	for _, g := range PaperGenres() {
		for i, share := range []float64{0.55, 0.30, 0.15} {
			cats = append(cats, CategorySpec{
				Name:   fmt.Sprintf("%s/tier%d", g.Name, i+1),
				Weight: g.Weight * share,
			})
		}
	}
	c.Categories = cats
	return c
}

// PaperScale returns the configuration the experiment suite runs: the 12
// paper genres, 22 Advisors and 40 Top Reviewers as in the crawl, with the
// user count scaled to keep the full suite laptop-fast (the paper itself
// subsampled one top-level category for computational cost).
func PaperScale() Config {
	c := base()
	c.NumUsers = 6000
	c.TotalObjects = 1500
	c.MeanRatingsPerUser = 45
	return c
}

func base() Config {
	return Config{
		Seed:               1,
		Categories:         PaperGenres(),
		MeanReviewsPerUser: 2.5,
		MeanRatingsPerUser: 30,
		MaxInterests:       4,
		SkillAlpha:         2, SkillBeta: 3.5,
		ConscAlpha: 4, ConscBeta: 2,
		GenerosityAlpha: 1.6, GenerosityBeta: 3,
		ZeroTrustFrac: 0.45,
		ActivityTail:  1.35, ActivityMax: 400,
		QualityNoise:    0.08,
		RatingNoiseBase: 0.05, RatingNoiseSlope: 0.35, RaterBiasStdDev: 0.04,
		TrustBase: 0.06, TrustAffinityWeight: 0.82, TrustRatingWeight: 0.12,
		OutOfBandTrustFrac:   0.2,
		RecentConnectionFrac: 0.35,
		NumAdvisors:          22,
		NumTopReviewers:      40,
		SelectionNoise:       0.05,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.NumUsers < 2:
		return fmt.Errorf("%w: NumUsers %d < 2", ErrBadConfig, c.NumUsers)
	case len(c.Categories) == 0:
		return fmt.Errorf("%w: no categories", ErrBadConfig)
	case c.TotalObjects < len(c.Categories):
		return fmt.Errorf("%w: TotalObjects %d < categories %d", ErrBadConfig, c.TotalObjects, len(c.Categories))
	case c.MeanReviewsPerUser <= 0 || c.MeanRatingsPerUser <= 0:
		return fmt.Errorf("%w: non-positive volume means", ErrBadConfig)
	case c.MaxInterests < 1 || c.MaxInterests > len(c.Categories):
		return fmt.Errorf("%w: MaxInterests %d outside [1, %d]", ErrBadConfig, c.MaxInterests, len(c.Categories))
	case c.SkillAlpha <= 0 || c.SkillBeta <= 0 || c.ConscAlpha <= 0 || c.ConscBeta <= 0 ||
		c.GenerosityAlpha <= 0 || c.GenerosityBeta <= 0:
		return fmt.Errorf("%w: Beta parameters must be positive", ErrBadConfig)
	case c.ActivityTail <= 0 || c.ActivityMax <= 1:
		return fmt.Errorf("%w: activity distribution parameters", ErrBadConfig)
	case c.QualityNoise < 0 || c.RatingNoiseBase < 0 || c.RatingNoiseSlope < 0 || c.RaterBiasStdDev < 0:
		return fmt.Errorf("%w: negative noise", ErrBadConfig)
	case c.OutOfBandTrustFrac < 0:
		return fmt.Errorf("%w: negative OutOfBandTrustFrac", ErrBadConfig)
	case c.RecentConnectionFrac < 0 || c.RecentConnectionFrac >= 1:
		return fmt.Errorf("%w: RecentConnectionFrac %v outside [0, 1)", ErrBadConfig, c.RecentConnectionFrac)
	case c.ZeroTrustFrac < 0 || c.ZeroTrustFrac >= 1:
		return fmt.Errorf("%w: ZeroTrustFrac %v outside [0, 1)", ErrBadConfig, c.ZeroTrustFrac)
	case c.NumAdvisors < 0 || c.NumTopReviewers < 0:
		return fmt.Errorf("%w: negative editorial pick counts", ErrBadConfig)
	}
	for i, cat := range c.Categories {
		if cat.Weight <= 0 {
			return fmt.Errorf("%w: category %d (%q) weight %v <= 0", ErrBadConfig, i, cat.Name, cat.Weight)
		}
	}
	return nil
}
