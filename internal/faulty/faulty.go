// Package faulty injects faults into an HTTP serving path so the
// cluster's failure handling can be exercised deterministically: added
// latency, synthetic error statuses, blackholed requests (accepted,
// never answered) and abrupt connection resets, each scoped to a path
// prefix and fired with a configured probability.
//
// The injector is a plain middleware — wrap any http.Handler (an
// in-process httptest server in the chaos harness, a reverse proxy in
// `trustd chaosproxy`) — and its coin flips come from a seeded
// splitmix64 counter, so a serial request stream sees the same fault
// sequence on every run. The fault set is swappable at runtime
// (SetFaults), which is how the harness kills, flaps and revives a
// replica mid-traffic without restarting anything.
package faulty

import (
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Fault is one injection rule. A request matches when its URL path has
// PathPrefix as a prefix (empty matches everything); a matching request
// draws one coin and, with probability Probability, suffers the fault.
// Within one fault the actions compose in order: Latency (if any) is
// served first, then exactly one of Reset, Blackhole or Status ends the
// request (Status 0 with neither flag means delay-only — the request
// proceeds to the wrapped handler after the pause).
type Fault struct {
	// PathPrefix scopes the fault to matching request paths ("" = all).
	PathPrefix string
	// Probability in [0, 1] that a matching request draws the fault.
	Probability float64
	// Latency is added before any other action (and before forwarding,
	// for delay-only faults).
	Latency time.Duration
	// Status, when non-zero, ends the request with this status code and
	// a small JSON error body.
	Status int
	// Blackhole accepts the request and never answers: the handler parks
	// until the client gives up (its timeout or disconnect), the shape of
	// a hung process.
	Blackhole bool
	// Reset tears the TCP connection down abruptly (SO_LINGER 0 where the
	// platform allows, so the peer sees a reset rather than a clean
	// close), the shape of a killed process.
	Reset bool
}

// Counts reports what an Injector actually did, by action.
type Counts struct {
	Passed     int64 // requests forwarded untouched
	Delayed    int64 // latency injections (including delay-only)
	Errored    int64 // synthetic status responses
	Blackholed int64
	Resets     int64
}

// Injector applies a swappable fault set to requests. Create with New;
// safe for concurrent use.
type Injector struct {
	seed   uint64
	seq    atomic.Uint64
	faults atomic.Pointer[[]Fault]

	passed     atomic.Int64
	delayed    atomic.Int64
	errored    atomic.Int64
	blackholed atomic.Int64
	resets     atomic.Int64
}

// New builds an injector with a deterministic coin sequence: request i's
// draw is splitmix64(seed + i), so two runs over the same serial request
// stream inject identically.
func New(seed uint64, faults ...Fault) *Injector {
	in := &Injector{seed: seed}
	in.SetFaults(faults...)
	return in
}

// SetFaults atomically replaces the fault set. An empty set makes the
// injector a passthrough — how the chaos harness "restarts" a replica it
// previously killed.
func (in *Injector) SetFaults(faults ...Fault) {
	fs := make([]Fault, len(faults))
	copy(fs, faults)
	in.faults.Store(&fs)
}

// Counts returns a snapshot of the injector's action counters.
func (in *Injector) Counts() Counts {
	return Counts{
		Passed:     in.passed.Load(),
		Delayed:    in.delayed.Load(),
		Errored:    in.errored.Load(),
		Blackholed: in.blackholed.Load(),
		Resets:     in.resets.Load(),
	}
}

// coin returns true with the given probability, consuming one draw from
// the deterministic sequence.
func (in *Injector) coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		in.seq.Add(1) // still consume a draw: fault edits don't shift the tail
		return true
	}
	u := splitmix64(in.seed + in.seq.Add(1))
	return float64(u>>11)/(1<<53) < p
}

// Wrap returns next behind the injector. The first matching fault that
// wins its coin applies; a delay-only fault pauses and then forwards
// (without drawing further faults), every other action ends the request.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, f := range *in.faults.Load() {
			if f.PathPrefix != "" && !strings.HasPrefix(r.URL.Path, f.PathPrefix) {
				continue
			}
			if !in.coin(f.Probability) {
				continue
			}
			if in.apply(f, w, r) {
				return
			}
			break // delay-only: fall through to the handler
		}
		in.passed.Add(1)
		next.ServeHTTP(w, r)
	})
}

// apply serves one drawn fault, reporting whether it ended the request.
// false means delay-only: the pause was served and the caller should
// forward to the wrapped handler.
func (in *Injector) apply(f Fault, w http.ResponseWriter, r *http.Request) bool {
	if f.Latency > 0 {
		in.delayed.Add(1)
		t := time.NewTimer(f.Latency)
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return true // client is gone; nothing to forward to
		}
	}
	switch {
	case f.Reset:
		in.resets.Add(1)
		abortConn(w)
	case f.Blackhole:
		in.blackholed.Add(1)
		<-r.Context().Done()
	case f.Status != 0:
		in.errored.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(f.Status)
		_, _ = w.Write([]byte(`{"error":"injected fault"}` + "\n"))
	default:
		return false
	}
	return true
}

// abortConn kills the client connection as abruptly as the stack allows:
// hijack and linger-0 close where possible, otherwise panic with
// http.ErrAbortHandler (net/http swallows it and drops the connection).
func abortConn(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetLinger(0)
			}
			_ = conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

// splitmix64 is the same finalising mixer the shard layer hashes ids
// with: full-avalanche, so consecutive sequence numbers draw independent
// coins.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
