package faulty

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok")
	})
}

// drawSequence records which of n serial requests drew the fault.
func drawSequence(seed uint64, p float64, n int) []bool {
	in := New(seed, Fault{Probability: p, Status: http.StatusServiceUnavailable})
	h := in.Wrap(okHandler())
	out := make([]bool, n)
	for i := range out {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/topk", nil))
		out[i] = rec.Code == http.StatusServiceUnavailable
	}
	return out
}

// TestDeterministicSequence pins the injector's core contract: the same
// seed yields the same fault sequence over a serial request stream, and
// a different seed yields a different one.
func TestDeterministicSequence(t *testing.T) {
	a := drawSequence(42, 0.5, 64)
	b := drawSequence(42, 0.5, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	hitsA, hitsC := 0, 0
	c := drawSequence(43, 0.5, 64)
	same := true
	for i := range a {
		if a[i] {
			hitsA++
		}
		if c[i] {
			hitsC++
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical 64-draw sequences")
	}
	// p=0.5 over 64 draws: both should be far from 0 and 64.
	for _, hits := range []int{hitsA, hitsC} {
		if hits < 10 || hits > 54 {
			t.Fatalf("p=0.5 drew %d/64 faults — coin is biased", hits)
		}
	}
}

// TestProbabilityExtremes: p=0 never fires, p=1 always fires — and a
// p>=1 fault still consumes a draw so editing it doesn't shift the tail
// of the sequence.
func TestProbabilityExtremes(t *testing.T) {
	for _, hit := range drawSequence(7, 0, 16) {
		if hit {
			t.Fatalf("p=0 fault fired")
		}
	}
	for i, hit := range drawSequence(7, 1, 16) {
		if !hit {
			t.Fatalf("p=1 fault missed at request %d", i)
		}
	}
}

// TestPathPrefixScope: a fault scoped to /v1/topk must not touch
// /v1/stats.
func TestPathPrefixScope(t *testing.T) {
	in := New(1, Fault{PathPrefix: "/v1/topk", Probability: 1, Status: 500})
	h := in.Wrap(okHandler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/stats got %d, want 200 (fault scoped to /v1/topk)", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/topk?user=1", nil))
	if rec.Code != 500 {
		t.Fatalf("/v1/topk got %d, want injected 500", rec.Code)
	}
	c := in.Counts()
	if c.Passed != 1 || c.Errored != 1 {
		t.Fatalf("counts = %+v, want Passed 1 Errored 1", c)
	}
}

// TestStatusFaultBody: the synthetic error is JSON with an error key, so
// upstream retry logic sees the same shape as a real shard error.
func TestStatusFaultBody(t *testing.T) {
	in := New(1, Fault{Probability: 1, Status: http.StatusBadGateway})
	h := in.Wrap(okHandler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("code %d, want 502", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "injected fault") {
		t.Fatalf("body %q lacks injected-fault marker", rec.Body.String())
	}
}

// TestLatencyOnlyForwards: a delay-only fault pauses, then the request
// reaches the wrapped handler and succeeds.
func TestLatencyOnlyForwards(t *testing.T) {
	in := New(1, Fault{Probability: 1, Latency: 10 * time.Millisecond})
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("delayed request: %d %q", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("no delay observed: %v", elapsed)
	}
	c := in.Counts()
	if c.Delayed != 1 || c.Passed != 1 {
		t.Fatalf("counts = %+v, want Delayed 1 Passed 1", c)
	}
}

// TestResetFaultKillsConnection: the client must see a transport error,
// not an HTTP response — the shape the router's breakers feed on.
func TestResetFaultKillsConnection(t *testing.T) {
	in := New(1, Fault{Probability: 1, Reset: true})
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("reset fault produced a response: %d", resp.StatusCode)
	}
	if in.Counts().Resets != 1 {
		t.Fatalf("counts = %+v, want Resets 1", in.Counts())
	}
}

// TestBlackholeHangsUntilClientTimeout: the request is accepted and
// never answered; a client with a timeout gets a timeout error.
func TestBlackholeHangsUntilClientTimeout(t *testing.T) {
	in := New(1, Fault{Probability: 1, Blackhole: true})
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	client := &http.Client{Timeout: 50 * time.Millisecond}
	start := time.Now()
	resp, err := client.Get(ts.URL + "/")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("blackholed request got a response: %d", resp.StatusCode)
	}
	var ne interface{ Timeout() bool }
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("blackhole error not a timeout: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("client gave up before its timeout: %v", elapsed)
	}
	if in.Counts().Blackholed != 1 {
		t.Fatalf("counts = %+v, want Blackholed 1", in.Counts())
	}
}

// TestSetFaultsSwap is the kill/revive lifecycle the chaos harness
// leans on: healthy → SetFaults(error) kills → SetFaults() revives.
func TestSetFaultsSwap(t *testing.T) {
	in := New(1)
	h := in.Wrap(okHandler())
	probe := func() int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		return rec.Code
	}
	if code := probe(); code != http.StatusOK {
		t.Fatalf("fresh injector: %d, want 200", code)
	}
	in.SetFaults(Fault{Probability: 1, Status: 503})
	if code := probe(); code != 503 {
		t.Fatalf("after kill: %d, want 503", code)
	}
	in.SetFaults()
	if code := probe(); code != http.StatusOK {
		t.Fatalf("after revive: %d, want 200", code)
	}
}

// TestFirstMatchWins: with two matching p=1 faults, only the first
// applies — fault order is precedence.
func TestFirstMatchWins(t *testing.T) {
	in := New(1,
		Fault{Probability: 1, Status: 503},
		Fault{Probability: 1, Status: 500},
	)
	h := in.Wrap(okHandler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 503 {
		t.Fatalf("got %d, want first fault's 503", rec.Code)
	}
	c := in.Counts()
	if c.Errored != 1 {
		t.Fatalf("counts = %+v, want exactly one errored", c)
	}
}
