// Package reputation implements Step 1c of the paper's framework: the
// reputation (expertise) of review writers per category (eq. 3), and the
// assembly of the Users_Category Expertise matrix E.
//
// A writer's reputation in a category is the average quality of the
// reviews they wrote there, discounted by inexperience:
//
//	rep(u𝑤ᵢ) = (Σ_j q_j / n_i) · (1 − 1/(n_i+1))
//
// where q_j are the Riggs review qualities (package riggs) and n_i is the
// number of reviews the writer wrote in the category.
package reputation

import (
	"fmt"

	"weboftrust/internal/mat"
	"weboftrust/internal/par"
	"weboftrust/internal/ratings"
	"weboftrust/internal/riggs"
)

// Options configures writer-reputation computation.
type Options struct {
	// DiscountExperience applies the (1 − 1/(n+1)) factor of eq. 3.
	// Disabling it is part of the A-1 ablation.
	DiscountExperience bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options { return Options{DiscountExperience: true} }

// CategoryWriters holds the writer reputations for one category.
type CategoryWriters struct {
	// Category is the category described.
	Category ratings.CategoryID
	// Writers lists users with at least one review in the category,
	// parallel to Reputation and ReviewCount.
	Writers     []ratings.UserID
	Reputation  []float64
	ReviewCount []int

	byWriter map[ratings.UserID]float64
}

// ReputationOf returns writer u's reputation and whether u wrote anything
// in this category.
func (cw *CategoryWriters) ReputationOf(u ratings.UserID) (float64, bool) {
	rep, ok := cw.byWriter[u]
	return rep, ok
}

// Writers computes writer reputations for one category from the category's
// Riggs result. The result's category must match cat.
func (o Options) Writers(d *ratings.Dataset, rq *riggs.CategoryResult, cat ratings.CategoryID) (*CategoryWriters, error) {
	if rq.Category != cat {
		return nil, fmt.Errorf("reputation: riggs result is for category %d, want %d", rq.Category, cat)
	}
	type acc struct {
		sum float64
		n   int
	}
	sums := make(map[ratings.UserID]*acc)
	var order []ratings.UserID
	for _, rid := range d.ReviewsInCategory(cat) {
		w := d.Review(rid).Writer
		q, ok := rq.QualityOf(rid)
		if !ok {
			return nil, fmt.Errorf("reputation: riggs result missing quality for review %d", rid)
		}
		a := sums[w]
		if a == nil {
			a = &acc{}
			sums[w] = a
			order = append(order, w)
		}
		a.sum += q
		a.n++
	}
	cw := &CategoryWriters{
		Category:    cat,
		Writers:     order,
		Reputation:  make([]float64, len(order)),
		ReviewCount: make([]int, len(order)),
		byWriter:    make(map[ratings.UserID]float64, len(order)),
	}
	for i, w := range order {
		a := sums[w]
		n := float64(a.n)
		rep := a.sum / n
		if o.DiscountExperience {
			rep *= 1 - 1/(n+1)
		}
		cw.Reputation[i] = rep
		cw.ReviewCount[i] = a.n
		cw.byWriter[w] = rep
	}
	return cw, nil
}

// ExpertiseMatrix assembles the U x C expertise matrix E from per-category
// Riggs results (one per category, indexed by CategoryID). E[u][c] is
// writer u's reputation in category c, 0 if u wrote nothing there. The
// assembly fans categories out to one worker per available CPU.
func (o Options) ExpertiseMatrix(d *ratings.Dataset, results []*riggs.CategoryResult) (*mat.Dense, error) {
	return o.ExpertiseMatrixWorkers(d, results, 0)
}

// ExpertiseMatrixWorkers is ExpertiseMatrix with an explicit worker count
// (<= 0 means one per available CPU). Each category owns a disjoint column
// of E, so the result is identical at any worker count.
func (o Options) ExpertiseMatrixWorkers(d *ratings.Dataset, results []*riggs.CategoryResult, workers int) (*mat.Dense, error) {
	if len(results) != d.NumCategories() {
		return nil, fmt.Errorf("reputation: %d riggs results for %d categories", len(results), d.NumCategories())
	}
	e := mat.NewDense(d.NumUsers(), d.NumCategories())
	errs := make([]error, d.NumCategories())
	par.Do(workers, d.NumCategories(), func(c int) {
		errs[c] = o.ExpertiseColumnInto(d, results[c], ratings.CategoryID(c), e)
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	return e, nil
}

// ExpertiseColumnInto computes column cat of the expertise matrix from one
// category's Riggs result and writes it into e (whose column is assumed
// zero). It lets incremental pipelines recompute only the columns whose
// category was touched; e must have d.NumUsers() rows.
func (o Options) ExpertiseColumnInto(d *ratings.Dataset, rq *riggs.CategoryResult, cat ratings.CategoryID, e *mat.Dense) error {
	cw, err := o.Writers(d, rq, cat)
	if err != nil {
		return err
	}
	for i, w := range cw.Writers {
		e.Set(int(w), int(cat), cw.Reputation[i])
	}
	return nil
}
