package reputation

import (
	"math"
	"testing"
	"testing/quick"

	"weboftrust/internal/ratings"
	"weboftrust/internal/riggs"
	"weboftrust/internal/stats"
)

// build creates one category where writerA writes two reviews rated 1.0
// and 0.8, and writerB writes one review rated 0.4.
func build(t *testing.T) (*ratings.Dataset, *riggs.CategoryResult) {
	t.Helper()
	b := ratings.NewBuilder()
	cat := b.AddCategory("movies")
	wa := b.AddUser("writerA")
	wb := b.AddUser("writerB")
	rater := b.AddUser("rater")
	for i, spec := range []struct {
		writer ratings.UserID
		value  float64
	}{
		{wa, 1.0}, {wa, 0.8}, {wb, 0.4},
	} {
		oid, err := b.AddObject(cat, "")
		if err != nil {
			t.Fatal(err)
		}
		rid, err := b.AddReview(spec.writer, oid)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddRating(rater, rid, spec.value); err != nil {
			t.Fatalf("rating %d: %v", i, err)
		}
	}
	d := b.Build()
	cr, err := riggs.DefaultModel().Solve(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d, cr
}

func TestWritersBasic(t *testing.T) {
	d, cr := build(t)
	cw, err := DefaultOptions().Writers(d, cr, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Single rater per review: qualities equal the raw ratings.
	// writerA: (1.0+0.8)/2 * (1 - 1/3) = 0.9 * 2/3 = 0.6
	// writerB: 0.4 * (1 - 1/2) = 0.2
	repA, okA := cw.ReputationOf(0)
	repB, okB := cw.ReputationOf(1)
	if !okA || !okB {
		t.Fatal("writers missing from result")
	}
	if math.Abs(repA-0.6) > 1e-9 {
		t.Errorf("writerA rep = %v, want 0.6", repA)
	}
	if math.Abs(repB-0.2) > 1e-9 {
		t.Errorf("writerB rep = %v, want 0.2", repB)
	}
	if _, ok := cw.ReputationOf(2); ok {
		t.Error("non-writer should be absent")
	}
	if cw.ReviewCount[0] != 2 || cw.ReviewCount[1] != 1 {
		t.Errorf("review counts = %v, want [2 1]", cw.ReviewCount)
	}
}

func TestWritersNoDiscount(t *testing.T) {
	d, cr := build(t)
	o := Options{DiscountExperience: false}
	cw, err := o.Writers(d, cr, 0)
	if err != nil {
		t.Fatal(err)
	}
	repA, _ := cw.ReputationOf(0)
	if math.Abs(repA-0.9) > 1e-9 {
		t.Errorf("writerA rep without discount = %v, want 0.9", repA)
	}
}

func TestWritersCategoryMismatch(t *testing.T) {
	d, cr := build(t)
	if _, err := DefaultOptions().Writers(d, cr, 1); err == nil {
		t.Error("expected error for category mismatch")
	}
}

func TestExpertiseMatrix(t *testing.T) {
	d, _ := build(t)
	results, err := riggs.DefaultModel().SolveAll(d)
	if err != nil {
		t.Fatal(err)
	}
	e, err := DefaultOptions().ExpertiseMatrix(d, results)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := e.Dims(); r != 3 || c != 1 {
		t.Fatalf("E dims = (%d, %d), want (3, 1)", r, c)
	}
	if math.Abs(e.At(0, 0)-0.6) > 1e-9 {
		t.Errorf("E[writerA] = %v, want 0.6", e.At(0, 0))
	}
	if e.At(2, 0) != 0 {
		t.Errorf("E[rater] = %v, want 0 (never wrote)", e.At(2, 0))
	}
}

func TestExpertiseMatrixResultCountMismatch(t *testing.T) {
	d, _ := build(t)
	if _, err := DefaultOptions().ExpertiseMatrix(d, nil); err == nil {
		t.Error("expected error for missing results")
	}
}

// Property: expertise values are in [0,1]; writers of more high-quality
// reviews never rank below writers of fewer equal-quality reviews.
func TestExpertiseInvariantsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		b := ratings.NewBuilder()
		cat := b.AddCategory("c")
		numWriters := 1 + rng.IntN(6)
		rater := ratings.UserID(numWriters)
		for i := 0; i <= numWriters; i++ {
			b.AddUser("")
		}
		for w := 0; w < numWriters; w++ {
			for k := 0; k < 1+rng.IntN(3); k++ {
				oid, _ := b.AddObject(cat, "")
				rid, _ := b.AddReview(ratings.UserID(w), oid)
				_ = b.AddRating(rater, rid, ratings.QuantizeRating(rng.Float64()))
			}
		}
		d := b.Build()
		results, err := riggs.DefaultModel().SolveAll(d)
		if err != nil {
			return false
		}
		e, err := DefaultOptions().ExpertiseMatrix(d, results)
		if err != nil {
			return false
		}
		for u := 0; u < d.NumUsers(); u++ {
			v := e.At(u, 0)
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with identical per-review quality q, a writer's reputation is
// exactly q * (1 - 1/(n+1)), strictly increasing in n.
func TestMoreGoodReviewsMoreExpertiseQuick(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 1 + int(nRaw)%10
		b := ratings.NewBuilder()
		cat := b.AddCategory("c")
		many := b.AddUser("many") // writes n+1 reviews
		few := b.AddUser("few")   // writes n
		rater := b.AddUser("rater")
		write := func(w ratings.UserID, count int) {
			for i := 0; i < count; i++ {
				oid, _ := b.AddObject(cat, "")
				rid, _ := b.AddReview(w, oid)
				_ = b.AddRating(rater, rid, 0.8)
			}
		}
		write(many, n+1)
		write(few, n)
		d := b.Build()
		results, err := riggs.DefaultModel().SolveAll(d)
		if err != nil {
			return false
		}
		e, err := DefaultOptions().ExpertiseMatrix(d, results)
		if err != nil {
			return false
		}
		return e.At(int(many), 0) > e.At(int(few), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
