package server

import (
	"sort"
	"sync"
	"time"

	"weboftrust/internal/core"
	"weboftrust/internal/ratings"
)

// The propagation precompute engine turns swap-time knowledge into
// served latency. Every incremental swap deliberately drops the
// result-cache entries of tainted sources — exactly the sources whose
// neighborhoods just changed, the ones traffic is most likely to
// re-query. The server therefore tracks per-key query heat (an EWMA of
// hit counts, folded through swaps), and right after the cache
// carry-over it recomputes the hottest propagate results that did NOT
// survive the migration — the hot∩tainted set — on the ingest
// goroutine, under a wall-clock budget, inserting them pre-warmed. The
// vectors come from the exact same fillScore + RankRowScratch path a
// served miss takes, so a pre-warmed answer is bitwise-identical to the
// on-demand one (pinned by TestPrewarmMatchesColdCompute).

// heatKey identifies one propagate-family working-set entry: the result
// kind, the source, and the cacheK bucket it is ranked at.
type heatKey struct {
	kind resultKind
	user ratings.UserID
	k    int
}

// heatEntry pairs a key with its folded heat for the hot() ordering.
type heatEntry struct {
	key  heatKey
	heat float64
}

const (
	// heatDecay is the EWMA fold factor: new = decay·window + (1−decay)·old.
	heatDecay = 0.5
	// heatFloor drops keys whose folded heat decays below it — a key
	// queried once stops being "hot" after a couple of quiet swaps.
	heatFloor = 0.25
	// heatMaxKeys bounds the tracker's memory against key churn (a scan
	// sweeping every user would otherwise grow it without bound).
	heatMaxKeys = 4096
)

// heatTracker accumulates per-key query counts between swaps (window)
// and folds them into a decaying average (ewma) at every swap. record is
// on the query path, so it does one map increment under a mutex.
type heatTracker struct {
	mu     sync.Mutex
	window map[heatKey]float64
	ewma   map[heatKey]float64
}

func newHeatTracker() *heatTracker {
	return &heatTracker{
		window: make(map[heatKey]float64),
		ewma:   make(map[heatKey]float64),
	}
}

func (h *heatTracker) record(key heatKey) {
	h.mu.Lock()
	h.window[key]++
	h.mu.Unlock()
}

// fold merges the since-last-swap window into the EWMA, pruning keys
// that have cooled below the floor and trimming the coldest keys over
// the size bound.
func (h *heatTracker) fold() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for k, old := range h.ewma {
		nv := (1 - heatDecay) * old
		if w, ok := h.window[k]; ok {
			nv += heatDecay * w
			delete(h.window, k)
		}
		if nv < heatFloor {
			delete(h.ewma, k)
		} else {
			h.ewma[k] = nv
		}
	}
	for k, w := range h.window {
		if nv := heatDecay * w; nv >= heatFloor {
			h.ewma[k] = nv
		}
		delete(h.window, k)
	}
	if len(h.ewma) > heatMaxKeys {
		entries := h.sortedLocked()
		for _, e := range entries[heatMaxKeys:] {
			delete(h.ewma, e.key)
		}
	}
}

// hot returns the folded working set hottest-first (ties broken by key
// fields, so the order — and therefore what a bounded budget precomputes
// — is deterministic for a given query history).
func (h *heatTracker) hot() []heatEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sortedLocked()
}

func (h *heatTracker) sortedLocked() []heatEntry {
	out := make([]heatEntry, 0, len(h.ewma))
	for k, v := range h.ewma {
		out = append(out, heatEntry{key: k, heat: v})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.heat != b.heat {
			return a.heat > b.heat
		}
		if a.key.kind != b.key.kind {
			return a.key.kind < b.key.kind
		}
		if a.key.user != b.key.user {
			return a.key.user < b.key.user
		}
		return a.key.k < b.key.k
	})
	return out
}

// precompute re-materialises the hot propagation results the swap
// dropped, hottest first, until the budget runs out. Entries that
// survived the carry-over (untainted sources) are skipped — the hot set
// is implicitly intersected with the taint set through the cache lookup
// — so every vector computed here is one a hot query would have paid a
// full traversal for. Runs on the ingest goroutine before the state is
// published; the query path never pays any of it.
func (s *Server) precompute(st *state, budget time.Duration) {
	s.metrics.precomputeRuns.Add(1)
	deadline := time.Now().Add(budget)
	numU := st.model.Dataset().NumUsers()
	var vectors int64
	for _, e := range s.heat.hot() {
		if !isPropagateKind(e.key.kind) {
			continue
		}
		if int(e.key.user) >= numU || !st.model.Owns(e.key.user) {
			continue
		}
		// Re-bucket against the new user count: a bucket clamped at the
		// old U maps to the equivalent bucket after growth.
		kc := cacheK(e.key.k, numU)
		key := resultKey{kind: e.key.kind, user: e.key.user, k: kc}
		if _, _, ok := st.results.get(key); ok {
			continue // carried over untainted — already warm
		}
		if time.Now().After(deadline) {
			// Hot work remains (this very key) but the budget is spent.
			s.metrics.precomputeBudgetExhausted.Add(1)
			break
		}
		s.prewarm(st, key)
		vectors++
	}
	s.metrics.precomputeVectors.Add(vectors)
}

// prewarm computes one ranked result exactly as a served miss would —
// same fillScore, same scratch discipline, same RankRowScratch and
// exact-length copy — and inserts it marked pre-warmed.
func (s *Server) prewarm(st *state, key resultKey) {
	sc := st.rows.get()
	s.fillScore(st, key.kind, key.user, sc.row)
	r := core.RankRowScratch(sc.row, key.k, sc.idx)
	if cap(r) > len(r) {
		r = append(make([]core.Ranked, 0, len(r)), r...)
	}
	st.results.putPrewarmed(key, r)
	st.rows.put(sc)
}
