package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"weboftrust"
	"weboftrust/internal/anomaly"
	"weboftrust/internal/core"
	"weboftrust/internal/ratings"
)

// TestAnomalyEndpoint: /v1/anomaly?user= and /v1/anomaly/top agree with
// a direct internal/anomaly Compute over the served dataset and web, and
// parameters are validated like every other endpoint.
func TestAnomalyEndpoint(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()
	model, _, _ := srv.Current()
	want := anomaly.Compute(model.Dataset(), model.WebOfTrust().Graph())
	totals := want.Total()

	for u := 0; u < d.NumUsers(); u += 9 {
		resp := decode[AnomalyResponse](t, get(t, h, fmt.Sprintf("/v1/anomaly?user=%d", u)))
		if resp.User != u || resp.Name != d.UserName(ratings.UserID(u)) || resp.Users != d.NumUsers() {
			t.Fatalf("anomaly(%d) header = %+v", u, resp)
		}
		if resp.Score != totals[u] {
			t.Errorf("anomaly(%d) score %v, want %v", u, resp.Score, totals[u])
		}
		rating, graphS, burst := want.Signals(ratings.UserID(u))
		if resp.Signals != (AnomalySignals{Rating: rating, Graph: graphS, Burst: burst}) {
			t.Errorf("anomaly(%d) signals %+v, want {%v %v %v}", u, resp.Signals, rating, graphS, burst)
		}
		wantRank := 1
		for j, v := range totals {
			if v > totals[u] || (v == totals[u] && j < u) {
				wantRank++
			}
		}
		if resp.Rank != wantRank {
			t.Errorf("anomaly(%d) rank %d, want %d", u, resp.Rank, wantRank)
		}
	}

	top := decode[AnomalyTopResponse](t, get(t, h, "/v1/anomaly/top?k=8"))
	if top.K != 8 || top.Users != d.NumUsers() {
		t.Fatalf("top header = %+v", top)
	}
	wantTop := core.RankRow(totals, 8)
	if len(top.Results) != len(wantTop) {
		t.Fatalf("top has %d rows, want %d", len(top.Results), len(wantTop))
	}
	for i, row := range top.Results {
		rk := wantTop[i]
		if row.Rank != i+1 || row.User != int(rk.User) || row.Score != rk.Score || row.Name != d.UserName(rk.User) {
			t.Errorf("top[%d] = %+v, want {%d %d %s %v}", i, row, i+1, rk.User, d.UserName(rk.User), rk.Score)
		}
	}
	// The leaderboard rides the result cache: a repeat query is a hit.
	hits := srv.metrics.cacheHits.Load()
	again := decode[AnomalyTopResponse](t, get(t, h, "/v1/anomaly/top?k=8"))
	if srv.metrics.cacheHits.Load() != hits+1 {
		t.Error("repeat /v1/anomaly/top did not hit the result cache")
	}
	for i := range again.Results {
		if again.Results[i] != top.Results[i] {
			t.Fatalf("cached top[%d] = %+v, want %+v", i, again.Results[i], top.Results[i])
		}
	}

	for url, want := range map[string]int{
		"/v1/anomaly":              http.StatusBadRequest,
		"/v1/anomaly?user=bogus":   http.StatusBadRequest,
		"/v1/anomaly?user=999999":  http.StatusNotFound,
		"/v1/anomaly/top?k=0":      http.StatusBadRequest,
		"/v1/anomaly/top?k=nonnum": http.StatusBadRequest,
	} {
		if rec := get(t, h, url); rec.Code != want {
			t.Errorf("GET %s = %d, want %d", url, rec.Code, want)
		}
	}
}

// TestAnomalyIncrementalSwap: a parent-matched swap installs eagerly,
// incrementally refreshed scores — bitwise equal to a cold Compute over
// the new dataset (the replica byte-identity property at single-server
// scope) — while a non-incremental swap reverts to the lazy cold path.
// The metrics scrape reports the vector without ever forcing one.
func TestAnomalyIncrementalSwap(t *testing.T) {
	srv, tailer, d := openServer(t)
	h := srv.Handler()

	// Before any anomaly traffic, the scrape must not force a compute.
	metrics := get(t, h, "/metrics").Body.String()
	if strings.Contains(metrics, "trustd_anomaly_scored_users") {
		t.Error("metrics scrape forced the anomaly compute on a cold state")
	}
	if !strings.Contains(metrics, "trustd_anomaly_computes_total 0") {
		t.Errorf("expected zero computes before traffic:\n%s", metrics)
	}

	// Force the root state's lazy compute through the endpoint.
	get(t, h, "/v1/anomaly?user=0")
	if _, ok := srv.cur.Load().anomaly.peek(); !ok {
		t.Fatal("root anomaly not computed after /v1/anomaly")
	}
	if got := srv.metrics.anomalyComputes.Load(); got != 1 {
		t.Fatalf("computes = %d after first query, want 1", got)
	}

	appendEvents(t, tailer.path, growBatch(d, 0))
	if n, err := tailer.Poll(); err != nil || n == 0 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	st := srv.cur.Load()
	sc, ok := st.anomaly.peek()
	if !ok {
		t.Fatal("incremental swap did not install eager anomaly scores")
	}
	if got := srv.metrics.anomalyRefreshes.Load(); got != 1 {
		t.Fatalf("refreshes = %d after incremental swap, want 1", got)
	}
	newModel, _, _ := srv.Current()
	cold := anomaly.Compute(newModel.Dataset(), newModel.WebOfTrust().Graph())
	gotTotals, wantTotals := sc.Total(), cold.Total()
	if len(gotTotals) != len(wantTotals) {
		t.Fatalf("refreshed scores cover %d users, want %d", len(gotTotals), len(wantTotals))
	}
	for u := range wantTotals {
		if gotTotals[u] != wantTotals[u] {
			t.Fatalf("refreshed score[%d] = %v, cold compute %v (must be bit-identical)", u, gotTotals[u], wantTotals[u])
		}
	}
	// Scrape now reports the installed vector, peek-only.
	metrics = get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		fmt.Sprintf("trustd_anomaly_scored_users %d", sc.NumUsers()),
		"trustd_anomaly_refreshes_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// The leaderboard cache never carries across a swap: scores move with
	// any delta, so the fresh state recuts from its own vector.
	top := decode[AnomalyTopResponse](t, get(t, h, "/v1/anomaly/top?k=5"))
	wantTop := core.RankRow(wantTotals, 5)
	for i, row := range top.Results {
		if row.User != int(wantTop[i].User) || row.Score != wantTop[i].Score {
			t.Errorf("post-swap top[%d] = %+v, want {%d %v}", i, row, wantTop[i].User, wantTop[i].Score)
		}
	}

	// A non-incremental swap (fresh derive, no parent link) is lazy again.
	fresh, err := weboftrust.Derive(newModel.Dataset())
	if err != nil {
		t.Fatal(err)
	}
	srv.Swap(fresh, 0)
	if _, ok := srv.cur.Load().anomaly.peek(); ok {
		t.Fatal("non-incremental swap should leave the anomaly pass lazy")
	}
}
