package server

import (
	"net/http"
	"sync"
	"sync/atomic"

	"weboftrust"
	"weboftrust/internal/anomaly"
	"weboftrust/internal/graph"
	"weboftrust/internal/ratings"
)

// anomalyState is a state's per-user suspicion scores (internal/anomaly).
// Like rankState, root states compute lazily on first use — the full
// Compute pass stays off the boot path — while parent-matched swaps
// install an eagerly, incrementally refreshed Scores on the ingest
// goroutine. Scores are a pure function of (dataset, web graph) and the
// incremental Update is bit-identical to a cold Compute, so every
// replica serves identical scores regardless of its swap cadence — the
// property that lets the router fan /v1/anomaly out to any shard.
type anomalyState struct {
	once    sync.Once
	done    atomic.Bool
	compute func() *anomaly.Scores
	scores  *anomaly.Scores
}

// lazyAnomaly defers the full scoring pass until the first anomaly query.
func (s *Server) lazyAnomaly(model *weboftrust.TrustModel) *anomalyState {
	return &anomalyState{compute: func() *anomaly.Scores {
		s.metrics.anomalyComputes.Add(1)
		return anomaly.Compute(model.Dataset(), model.WebOfTrust().Graph())
	}}
}

// eagerAnomaly wraps already-refreshed scores (the swap path).
func eagerAnomaly(sc *anomaly.Scores) *anomalyState {
	a := &anomalyState{scores: sc}
	a.done.Store(true)
	return a
}

// get returns the scores, computing once on first use. Concurrent
// callers coalesce on the sync.Once.
func (a *anomalyState) get() *anomaly.Scores {
	a.once.Do(func() {
		if a.compute != nil {
			a.scores = a.compute()
			a.compute = nil
		}
		a.done.Store(true)
	})
	return a.scores
}

// peek returns the scores only if already computed — the metrics scrape
// must never force a scoring pass.
func (a *anomalyState) peek() (*anomaly.Scores, bool) {
	if !a.done.Load() {
		return nil, false
	}
	return a.scores, true
}

// refreshAnomaly builds the new state's anomaly scores across a
// parent-matched swap: it forces the predecessor's scores (starting the
// chain, like the rank refresh above it) and advances them incrementally
// over the ingest delta — paying O(dirty closure), not O(users).
func (s *Server) refreshAnomaly(model *weboftrust.TrustModel, prev *state, dirty []bool) *anomalyState {
	prevScores := prev.anomaly.get()
	var prevG *graph.Graph
	// Computing prevScores built prev's web, but a restored-then-swapped
	// state may have scored against a nil graph; mirror exactly what the
	// predecessor used.
	if prevWeb, ok := prev.model.WebOfTrustBuilt(); ok {
		prevG = prevWeb.Graph()
	}
	s.metrics.anomalyRefreshes.Add(1)
	return eagerAnomaly(anomaly.Update(
		prevScores, prev.model.Dataset(), model.Dataset(),
		prevG, model.WebOfTrust().Graph(), dirty))
}

// AnomalySignals is the per-signal breakdown of one user's suspicion
// score (each in [0, 1]; see internal/anomaly for definitions).
type AnomalySignals struct {
	Rating float64 `json:"rating"`
	Graph  float64 `json:"graph"`
	Burst  float64 `json:"burst"`
}

// AnomalyResponse is the /v1/anomaly?user= body: one user's combined
// suspicion score, its breakdown, and the user's position on the
// suspicion leaderboard (1 = most suspicious).
type AnomalyResponse struct {
	User    int            `json:"user"`
	Name    string         `json:"name"`
	Version uint64         `json:"version"`
	Users   int            `json:"users"`
	Score   float64        `json:"score"`
	Rank    int            `json:"rank"`
	Signals AnomalySignals `json:"signals"`
}

// handleAnomaly serves one user's suspicion score. Like /v1/rank, the
// score vector is global, replicated state — any shard answers for any
// user, and the router relays the freshest shard's body verbatim.
func (s *Server) handleAnomaly(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epAnomaly].Add(1)
	st, ok := s.loadState(w)
	if !ok {
		return
	}
	u, ok := s.userParam(w, r, st, "user")
	if !ok {
		return
	}
	sc := st.anomaly.get()
	totals := sc.Total()
	score := totals[u]
	rank := 1
	for j, v := range totals {
		if v > score || (v == score && ratings.UserID(j) < u) {
			rank++
		}
	}
	rating, graphS, burst := sc.Signals(u)
	writeJSON(w, http.StatusOK, AnomalyResponse{
		User: int(u), Name: st.model.Dataset().UserName(u), Version: st.version,
		Users: len(totals), Score: score, Rank: rank,
		Signals: AnomalySignals{Rating: rating, Graph: graphS, Burst: burst},
	})
}

// AnomalyTopResponse is the /v1/anomaly/top body: the k most suspicious
// users, most suspicious first.
type AnomalyTopResponse struct {
	K       int         `json:"k"`
	Version uint64      `json:"version"`
	Users   int         `json:"users"`
	Results []RankEntry `json:"results"`
}

// handleAnomalyTop serves the suspicion leaderboard through the same
// result-cache/singleflight path as top-k and propagation answers (one
// kindAnomalyTop entry per cached k; the score vector itself lives in
// the state's anomalyState, so a miss only copies and ranks it).
func (s *Server) handleAnomalyTop(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epAnomalyTop].Add(1)
	st, ok := s.loadState(w)
	if !ok {
		return
	}
	k, ok := s.kParam(w, r)
	if !ok {
		return
	}
	ranked := s.ranked(st, kindAnomalyTop, 0, k)
	d := st.model.Dataset()
	results := make([]RankEntry, len(ranked))
	for i, rk := range ranked {
		results[i] = RankEntry{Rank: i + 1, User: int(rk.User), Name: d.UserName(rk.User), Score: rk.Score}
	}
	writeJSON(w, http.StatusOK, AnomalyTopResponse{
		K: k, Version: st.version, Users: d.NumUsers(), Results: results,
	})
}

// fillAnomaly is the kindAnomalyTop branch of fillScore: the suspicion
// vector, copied so the ranked scratch never aliases the immutable
// Scores (and honest zero-score users drop out of the ranking as with
// every other family).
func fillAnomaly(st *state, dst []float64) {
	copy(dst, st.anomaly.get().Total())
}
