package server

import (
	"sync"
	"sync/atomic"

	"weboftrust/internal/ratings"
)

// flightGroup coalesces concurrent computations of one user's trust row
// (stdlib-only singleflight): the first miss for a user becomes the
// leader and computes the row into a pooled scratch; followers that
// arrive while the computation is in flight wait on the flight's
// WaitGroup and read the same buffer instead of recomputing an O(U·C)
// row per request. The scratch returns to the pool when the last
// participant — leader or follower — releases it, so a coalesced row is
// never recycled under a reader.
//
// Each server state owns its own group (like its cache and pool): a
// swap strands in-flight computations harmlessly on the state their
// requests loaded.
type flightGroup struct {
	mu sync.Mutex
	m  map[ratings.UserID]*flight
}

type flight struct {
	wg      sync.WaitGroup
	scratch *queryScratch // set by the leader before wg.Done
	// refs counts participants still using scratch: the leader plus every
	// follower that registered before the leader unpublished the flight.
	// Followers register under flightGroup.mu — the same lock the leader
	// deletes the map entry under — so no follower can join after the
	// release accounting has started.
	refs atomic.Int32
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[ratings.UserID]*flight)}
}

// join returns the in-flight computation for user u and registers the
// caller as a follower, or reports that the caller must lead.
func (g *flightGroup) join(u ratings.UserID) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[u]; ok {
		f.refs.Add(1)
		return f, true
	}
	f := &flight{}
	f.refs.Store(1)
	f.wg.Add(1)
	g.m[u] = f
	return f, false
}

// unpublish removes the finished flight so later misses start fresh; the
// leader calls it after setting f.scratch and before wg.Done.
func (g *flightGroup) unpublish(u ratings.UserID) {
	g.mu.Lock()
	delete(g.m, u)
	g.mu.Unlock()
}

// refs reports the participants registered on user u's in-flight row
// computation, 0 when none is in flight. Test hook.
func (g *flightGroup) refsOf(u ratings.UserID) int32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[u]; ok {
		return f.refs.Load()
	}
	return 0
}
