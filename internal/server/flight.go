package server

import (
	"sync"
	"sync/atomic"

	"weboftrust/internal/ratings"
)

// flightGroup coalesces concurrent computations of one user's score
// vector (stdlib-only singleflight): the first miss for a (kind, user)
// becomes the leader and computes the vector into a pooled scratch —
// a trust row for the top-k family, a propagation rank vector for the
// propagate families; followers that arrive while the computation is in
// flight wait on the flight's WaitGroup and read the same buffer instead
// of recomputing an O(U·C) row (or a full graph traversal) per request.
// The scratch returns to the pool when the last participant — leader or
// follower — releases it, so a coalesced vector is never recycled under
// a reader.
//
// Each server state owns its own group (like its cache and pool): a
// swap strands in-flight computations harmlessly on the state their
// requests loaded.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flight
}

// flightKey is the unit of coalescing: one result family for one source
// user (k does not enter — every k ranks the same computed vector).
type flightKey struct {
	kind resultKind
	user ratings.UserID
}

type flight struct {
	wg      sync.WaitGroup
	scratch *queryScratch // set by the leader before wg.Done
	// refs counts participants still using scratch: the leader plus every
	// follower that registered before the leader unpublished the flight.
	// Followers register under flightGroup.mu — the same lock the leader
	// deletes the map entry under — so no follower can join after the
	// release accounting has started.
	refs atomic.Int32
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[flightKey]*flight)}
}

// join returns the in-flight computation for key and registers the
// caller as a follower, or reports that the caller must lead.
func (g *flightGroup) join(key flightKey) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		f.refs.Add(1)
		return f, true
	}
	f := &flight{}
	f.refs.Store(1)
	f.wg.Add(1)
	g.m[key] = f
	return f, false
}

// unpublish removes the finished flight so later misses start fresh; the
// leader calls it after setting f.scratch and before wg.Done.
func (g *flightGroup) unpublish(key flightKey) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
}

// refs reports the participants registered on user u's in-flight top-k
// row computation, 0 when none is in flight. Test hook.
func (g *flightGroup) refsOf(u ratings.UserID) int32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[flightKey{kind: kindTopK, user: u}]; ok {
		return f.refs.Load()
	}
	return 0
}
