package server

import (
	"errors"
	"fmt"
	"os"
	"time"

	"weboftrust"
	"weboftrust/internal/checkpoint"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
)

// BootInfo reports how a serving stack came up, for operator logs.
type BootInfo struct {
	// Warm is true when a checkpoint was restored; false means a full
	// cold replay + derive.
	Warm bool
	// CheckpointPath and CheckpointOffset identify the restored
	// checkpoint (zero values when cold).
	CheckpointPath   string
	CheckpointOffset int64
	// TailedEvents is how many log records were replayed on top of the
	// restored checkpoint (cold boots replay everything; see Offset).
	TailedEvents int
	// Offset is the event-log offset the served model reflects.
	Offset int64
	// FallbackReason is set when a checkpoint directory was given but the
	// boot went cold anyway: no usable checkpoint, or a warm tail that
	// failed against the current log.
	FallbackReason string
}

// OpenCheckpointed bootstraps a serving stack like Open, but restores the
// newest usable checkpoint in ckptDir first and replays only the log
// suffix past it through the incremental pipeline — converting boot cost
// from O(whole history) to O(checkpoint load + tail). Any problem with
// the checkpoint path (no usable checkpoint, stale fingerprint, a tail
// that no longer matches the log) falls back to the cold path, so a bad
// checkpoint directory can delay a boot but never prevent one. An empty
// ckptDir is exactly Open.
//
// The returned Tailer is positioned at the end of the log's intact
// prefix, whichever path built the model.
func OpenCheckpointed(logPath, ckptDir string, poll time.Duration, opts Options, derive ...weboftrust.Option) (*Server, *Tailer, *BootInfo, error) {
	return OpenCheckpointedInto(nil, logPath, ckptDir, poll, opts, derive...)
}

// OpenCheckpointedInto is OpenCheckpointed, but publishes the booted
// model into an existing pending server (NewPending) instead of creating
// one — the early-listen shape: the daemon binds its address and serves
// 503s/liveness first, boots, and the first Swap flips it live. A nil
// into behaves exactly like OpenCheckpointed.
func OpenCheckpointedInto(into *Server, logPath, ckptDir string, poll time.Duration, opts Options, derive ...weboftrust.Option) (*Server, *Tailer, *BootInfo, error) {
	cold := func(reason string) (*Server, *Tailer, *BootInfo, error) {
		srv, tailer, err := openInto(into, logPath, poll, opts, derive...)
		if err != nil {
			return nil, nil, nil, err
		}
		_, offset, _ := srv.Current()
		return srv, tailer, &BootInfo{Offset: offset, FallbackReason: reason}, nil
	}
	if ckptDir == "" {
		return cold("")
	}
	// No writer can be mid-checkpoint at boot; clear crashed-write debris.
	_ = checkpoint.RemoveTemps(ckptDir)

	// Any restore failure — no usable checkpoint, or a directory that
	// cannot even be scanned (wrong permissions, a file where a dir was
	// expected) — goes cold: a bad checkpoint setup may delay a boot but
	// must never prevent one.
	model, info, err := checkpoint.Restore(ckptDir, derive...)
	if err != nil {
		return cold(err.Error())
	}

	srv, tailer, tailed, offset, err := resumeFrom(into, model, logPath, poll, opts, info)
	if err != nil {
		// The checkpoint restored but the log disagrees with it (swapped
		// out from under the directory, or corrupt past the offset in a
		// way a fresh replay may tolerate differently). Serving data
		// beats serving nothing: replay from scratch.
		return cold(fmt.Sprintf("checkpoint %s unusable against log: %v", info.Path, err))
	}
	// Seed the durability surface from the restored file: /v1/stats and
	// /metrics report it immediately, and a Checkpointer's first
	// skip-idle check can recognise the on-disk checkpoint instead of
	// rewriting a byte-identical one.
	status := &CheckpointStatus{Path: info.Path, Offset: info.Offset}
	if st, err := os.Stat(info.Path); err == nil {
		status.SizeBytes = st.Size()
		status.WrittenAt = st.ModTime()
	}
	srv.setCheckpointStatus(status)
	return srv, tailer, &BootInfo{
		Warm:             true,
		CheckpointPath:   info.Path,
		CheckpointOffset: info.Offset,
		TailedEvents:     tailed,
		Offset:           offset,
	}, nil
}

// resumeFrom builds the serving stack on top of a restored model: tail
// the log from the checkpoint's (rebased) offset, fold the suffix in with
// the incremental pipeline, and position the tailer at the end of the
// intact prefix.
func resumeFrom(into *Server, model *weboftrust.TrustModel, logPath string, poll time.Duration, opts Options, info checkpoint.Info) (*Server, *Tailer, int, int64, error) {
	st, err := os.Stat(logPath)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	resume := info.Resume(st.Size())

	f, err := os.Open(logPath)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	defer f.Close()
	events, offset, err := store.ReadLogFrom(f, resume)
	if err != nil && !errors.Is(err, store.ErrTruncated) {
		return nil, nil, 0, 0, err
	}

	if len(events) == 0 {
		// Nothing past the checkpoint: serve the restored model as-is and
		// let the tailer materialise its builder lazily, keeping the
		// dedup-map reconstruction off the time-to-serving path.
		srv := adoptOrNew(into, model, offset, opts)
		return srv, NewTailerFromDataset(srv, logPath, poll, model.Dataset(), offset), 0, offset, nil
	}
	builder := ratings.NewBuilderFrom(model.Dataset())
	if err := store.Replay(events, builder); err != nil {
		return nil, nil, 0, 0, err
	}
	model, err = model.Update(builder.Snapshot())
	if err != nil {
		return nil, nil, 0, 0, err
	}
	srv := adoptOrNew(into, model, offset, opts)
	return srv, NewTailer(srv, logPath, poll, builder, offset), len(events), offset, nil
}

// adoptOrNew publishes a freshly booted model: by the first Swap into an
// early-bound pending server, or by constructing one. Both paths stamp
// the state version 1.
func adoptOrNew(into *Server, model *weboftrust.TrustModel, offset int64, opts Options) *Server {
	if into == nil {
		return New(model, offset, opts)
	}
	into.Swap(model, offset)
	return into
}
