// Package server implements trustd's serving core: an HTTP daemon that
// answers trust queries from immutable pipeline artifacts and keeps itself
// fresh by tailing an append-only event log.
//
// The design splits reads from ingest. Queries read a *state — the derived
// model, its event-log offset and a bounded row cache — through one
// atomic.Pointer load, so the read path never takes a lock and never
// blocks on ingest. The Tailer replays new events past its checkpoint,
// rebuilds artifacts incrementally with core.Update, and swaps the new
// state in atomically; in-flight requests finish against the state they
// started with, and the fresh state starts with an empty cache (swap IS
// the invalidation).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"weboftrust"
	"weboftrust/internal/core"
	"weboftrust/internal/ratings"
)

// state is everything one consistent view of the world needs. It is
// immutable after construction and replaced wholesale on ingest.
type state struct {
	model   *weboftrust.TrustModel
	offset  int64 // event-log offset the model reflects
	version uint64
	cache   *rowCache
}

// Options tunes a Server. The zero value uses the defaults.
type Options struct {
	// CacheRows bounds the per-state LRU of derived-trust rows. Zero
	// means DefaultCacheRows; negative disables caching.
	CacheRows int
}

// DefaultCacheRows is the row-cache bound when Options.CacheRows is 0.
// A row costs 8·U bytes, so at the Medium preset (2,000 users) the
// default cache tops out at ~8 MiB.
const DefaultCacheRows = 512

// Server serves trust queries over HTTP. Create with New, mount Handler,
// and feed it fresh models via Swap (usually from a Tailer).
type Server struct {
	opts    Options
	cur     atomic.Pointer[state]
	start   time.Time
	metrics metrics
}

// metrics is the server's instrumentation, exposed at /metrics in
// Prometheus text format. All fields are monotonic counters except the
// gauges derived from the current state at scrape time.
type metrics struct {
	requests       [4]atomic.Int64 // indexed by endpoint constants below
	badRequests    atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	swaps          atomic.Int64
	eventsIngested atomic.Int64
	truncatedReads atomic.Int64
	lastSwapNanos  atomic.Int64
}

const (
	epTopK = iota
	epTrust
	epExpertise
	epStats
)

// New wraps a derived model for serving. offset is the event-log position
// the model reflects (0 when serving a snapshot with no log).
func New(model *weboftrust.TrustModel, offset int64, opts Options) *Server {
	if opts.CacheRows == 0 {
		opts.CacheRows = DefaultCacheRows
	}
	s := &Server{opts: opts, start: time.Now()}
	s.cur.Store(&state{
		model:   model,
		offset:  offset,
		version: 1,
		cache:   newRowCache(opts.CacheRows),
	})
	return s
}

// Swap atomically replaces the served model. Readers in flight keep the
// state they loaded; new requests see the new model with a fresh (empty)
// row cache. Safe for one writer; queries never block on it.
func (s *Server) Swap(model *weboftrust.TrustModel, offset int64) {
	s.cur.Store(&state{
		model:   model,
		offset:  offset,
		version: s.cur.Load().version + 1,
		cache:   newRowCache(s.opts.CacheRows),
	})
	s.metrics.swaps.Add(1)
	s.metrics.lastSwapNanos.Store(time.Now().UnixNano())
}

// Current returns the served model, its event-log offset and version.
func (s *Server) Current() (*weboftrust.TrustModel, int64, uint64) {
	st := s.cur.Load()
	return st.model, st.offset, st.version
}

// row returns user u's trust row (self excluded) from the state's cache,
// computing and inserting it on a miss. The returned slice is shared and
// must not be modified.
func (s *Server) row(st *state, u ratings.UserID) []float64 {
	if r, ok := st.cache.get(u); ok {
		s.metrics.cacheHits.Add(1)
		return r
	}
	s.metrics.cacheMisses.Add(1)
	dt := st.model.Artifacts().Trust
	r := dt.RowAuto(u, nil)
	r[u] = 0 // exclude self, matching TopTrusted
	st.cache.put(u, r)
	return r
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/topk", s.handleTopK)
	mux.HandleFunc("GET /v1/trust", s.handleTrust)
	mux.HandleFunc("GET /v1/expertise", s.handleExpertise)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.metrics.badRequests.Add(1)
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// userParam parses a user id query parameter and range-checks it against
// the dataset.
func (s *Server) userParam(w http.ResponseWriter, r *http.Request, st *state, name string) (ratings.UserID, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		s.fail(w, http.StatusBadRequest, "missing %q parameter", name)
		return 0, false
	}
	id, err := strconv.Atoi(raw)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad %q parameter %q", name, raw)
		return 0, false
	}
	if id < 0 || id >= st.model.Dataset().NumUsers() {
		s.fail(w, http.StatusNotFound, "user %d out of range (%d users)", id, st.model.Dataset().NumUsers())
		return 0, false
	}
	return ratings.UserID(id), true
}

// RankedUser is one /v1/topk result row.
type RankedUser struct {
	User  int     `json:"user"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// TopKResponse is the /v1/topk body.
type TopKResponse struct {
	User    int          `json:"user"`
	K       int          `json:"k"`
	Version uint64       `json:"version"`
	Results []RankedUser `json:"results"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epTopK].Add(1)
	st := s.cur.Load()
	u, ok := s.userParam(w, r, st, "user")
	if !ok {
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		var err error
		if k, err = strconv.Atoi(raw); err != nil || k < 1 {
			s.fail(w, http.StatusBadRequest, "bad \"k\" parameter %q", raw)
			return
		}
	}
	ranked := core.RankRow(s.row(st, u), k)
	d := st.model.Dataset()
	results := make([]RankedUser, len(ranked))
	for i, rk := range ranked {
		results[i] = RankedUser{User: int(rk.User), Name: d.UserName(rk.User), Score: rk.Score}
	}
	writeJSON(w, http.StatusOK, TopKResponse{User: int(u), K: k, Version: st.version, Results: results})
}

// TrustResponse is the /v1/trust body.
type TrustResponse struct {
	From    int     `json:"from"`
	To      int     `json:"to"`
	Version uint64  `json:"version"`
	Score   float64 `json:"score"`
}

func (s *Server) handleTrust(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epTrust].Add(1)
	st := s.cur.Load()
	from, ok := s.userParam(w, r, st, "from")
	if !ok {
		return
	}
	to, ok := s.userParam(w, r, st, "to")
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, TrustResponse{
		From: int(from), To: int(to), Version: st.version,
		Score: st.model.Score(from, to),
	})
}

// CategoryProfile is one /v1/expertise result row.
type CategoryProfile struct {
	Category  int     `json:"category"`
	Name      string  `json:"name"`
	Expertise float64 `json:"expertise"`
	Affinity  float64 `json:"affinity"`
}

// ExpertiseResponse is the /v1/expertise body.
type ExpertiseResponse struct {
	User       int               `json:"user"`
	Name       string            `json:"name"`
	Version    uint64            `json:"version"`
	Categories []CategoryProfile `json:"categories"`
}

func (s *Server) handleExpertise(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epExpertise].Add(1)
	st := s.cur.Load()
	u, ok := s.userParam(w, r, st, "user")
	if !ok {
		return
	}
	d := st.model.Dataset()
	e := st.model.Expertise(u)
	a := st.model.Affinity(u)
	cats := make([]CategoryProfile, d.NumCategories())
	for c := range cats {
		cats[c] = CategoryProfile{
			Category:  c,
			Name:      d.CategoryName(ratings.CategoryID(c)),
			Expertise: e[c],
			Affinity:  a[c],
		}
	}
	writeJSON(w, http.StatusOK, ExpertiseResponse{
		User: int(u), Name: d.UserName(u), Version: st.version, Categories: cats,
	})
}

// StatsResponse is the /v1/stats body: dataset shape plus serving state.
type StatsResponse struct {
	Dataset       ratings.DatasetStats `json:"dataset"`
	Version       uint64               `json:"version"`
	LogOffset     int64                `json:"log_offset"`
	CachedRows    int                  `json:"cached_rows"`
	UptimeSeconds float64              `json:"uptime_seconds"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epStats].Add(1)
	st := s.cur.Load()
	writeJSON(w, http.StatusOK, StatsResponse{
		Dataset:       st.model.Dataset().Stats(),
		Version:       st.version,
		LogOffset:     st.offset,
		CachedRows:    st.cache.len(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cur.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"version": st.version,
		"offset":  st.offset,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cur.Load()
	d := st.model.Dataset()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP trustd_requests_total Queries served, by endpoint.\n# TYPE trustd_requests_total counter\n")
	for i, ep := range []string{"topk", "trust", "expertise", "stats"} {
		fmt.Fprintf(w, "trustd_requests_total{endpoint=%q} %d\n", ep, s.metrics.requests[i].Load())
	}
	counter("trustd_bad_requests_total", "Requests rejected with a client error.", s.metrics.badRequests.Load())
	counter("trustd_row_cache_hits_total", "Trust-row cache hits.", s.metrics.cacheHits.Load())
	counter("trustd_row_cache_misses_total", "Trust-row cache misses.", s.metrics.cacheMisses.Load())
	counter("trustd_swaps_total", "Model swaps performed by ingest.", s.metrics.swaps.Load())
	counter("trustd_events_ingested_total", "Event-log records ingested since start.", s.metrics.eventsIngested.Load())
	counter("trustd_log_truncated_reads_total", "Tail reads that hit a torn final record.", s.metrics.truncatedReads.Load())
	gauge("trustd_model_version", "Version of the served model (increments per swap).", int64(st.version))
	gauge("trustd_log_offset_bytes", "Event-log offset the served model reflects.", st.offset)
	gauge("trustd_row_cache_size", "Rows currently cached.", int64(st.cache.len()))
	gauge("trustd_dataset_users", "Users in the served dataset.", int64(d.NumUsers()))
	gauge("trustd_dataset_categories", "Categories in the served dataset.", int64(d.NumCategories()))
	gauge("trustd_dataset_reviews", "Reviews in the served dataset.", int64(d.NumReviews()))
	gauge("trustd_dataset_ratings", "Ratings in the served dataset.", int64(d.NumRatings()))
	gauge("trustd_last_swap_timestamp_nanos", "Unix time of the last model swap, 0 before any.", s.metrics.lastSwapNanos.Load())
}
