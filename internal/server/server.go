// Package server implements trustd's serving core: an HTTP daemon that
// answers trust queries from immutable pipeline artifacts and keeps itself
// fresh by tailing an append-only event log.
//
// The design splits reads from ingest. Queries read a *state — the derived
// model, its event-log offset and a bounded result cache — through one
// atomic.Pointer load, so the read path never takes a lock and never
// blocks on ingest. The Tailer replays new events past its checkpoint,
// rebuilds artifacts incrementally with core.Update, and swaps the new
// state in atomically; in-flight requests finish against the state they
// started with, and the fresh state starts with an empty cache (swap IS
// the invalidation).
//
// The query path itself is two-tier: a bounded LRU of ranked results
// keyed by (kind, user, k) — O(k) bytes per entry, not the 8·U-byte
// dense rows the first iteration cached — backed by a sync.Pool of
// row-length scratch buffers, so steady-state misses evaluate eq. 5 with
// zero allocations. Concurrent misses for the same key coalesce through
// a per-state flight group: one computation, many readers.
//
// Beyond the continuous-score endpoints, the daemon serves the binarised
// web of trust itself: /v1/neighbors lists a user's predicted-trust
// edges, /v1/propagate ranks multi-hop transitive trust with Appleseed,
// MoleTrust or TidalTrust over the served graph, and /v1/graph/stats
// reports its shape. Propagation results ride the same result cache,
// byte budget and singleflight as top-k answers (one extra key
// dimension), and a model swap invalidates them with the same
// whole-state replacement.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"weboftrust"
	"weboftrust/internal/core"
	"weboftrust/internal/ratings"
)

// state is everything one consistent view of the world needs. It is
// immutable after construction and replaced wholesale on ingest.
type state struct {
	model   *weboftrust.TrustModel
	offset  int64 // event-log offset the model reflects
	version uint64
	results *resultCache
	rows    *rowPool
	flights *flightGroup
	// rank is the state's global EigenTrust vector: lazy cold solve for
	// root states, eagerly warm-refreshed across parent-matched swaps.
	rank *rankState
	// anomaly is the state's per-user suspicion scores, with the same
	// lazy-cold / eager-incremental lifecycle as rank.
	anomaly *anomalyState
	// landmarks is the state's landmark sketches for the
	// `?approx=landmark` propagation mode, with the same lazy-cold /
	// eager-incremental lifecycle.
	landmarks *landmarkState
}

// Options tunes a Server. The zero value uses the defaults.
type Options struct {
	// CacheResults bounds the per-state LRU of ranked top-k results.
	// Zero means DefaultCacheResults; negative disables caching.
	CacheResults int
	// CacheBytes bounds the result cache's approximate retained memory,
	// guarding against large-k answers (each legitimately O(k), up to
	// O(U), bytes) filling every entry slot. Zero means
	// DefaultCacheBytes; negative disables the byte bound.
	CacheBytes int64
	// MaxInFlight bounds concurrently served compute queries (the /v1
	// per-source and rank endpoints). Requests over the bound are shed
	// with 429 + Retry-After instead of queueing without limit — bounded
	// latency under overload beats unbounded goroutine pileup. 0 (the
	// default) disables admission control; the observability surfaces
	// (/v1/stats, /v1/graph/stats, /healthz, /readyz, /metrics) are never
	// shed, so operators can see INTO an overloaded server.
	MaxInFlight int
	// PrecomputeBudget is the wall-clock the ingest goroutine may spend
	// per incremental swap recomputing hot tainted sources' propagation
	// vectors into the result cache pre-warmed (the propagation
	// precompute engine; see precompute.go). 0 (the default) disables
	// swap-time precompute.
	PrecomputeBudget time.Duration
	// Landmarks is the landmark-hub count for the `?approx=landmark`
	// propagation mode: the top-Landmarks warm-rank nodes' full
	// propagation vectors are sketched (lazily) and composed per query.
	// 0 means DefaultLandmarks; negative disables the mode.
	Landmarks int
}

// DefaultCacheResults is the result-cache bound when Options.CacheResults
// is 0. An entry costs O(k) bytes (~250 B at k=10), so the default cache
// tops out around 128 KiB — against the ~8 MiB the same bound cost when
// entries were dense 8·U-byte rows at the Medium preset.
const DefaultCacheResults = 512

// DefaultCacheBytes is the result-cache byte budget when
// Options.CacheBytes is 0: generous against the default-k entry size
// (512 × ~250 B), tight against dense-row-sized entries.
const DefaultCacheBytes = 1 << 20

// Server serves trust queries over HTTP. Create with New, mount Handler,
// and feed it fresh models via Swap (usually from a Tailer). In a
// sharded deployment (the model derived with WithShard) the server
// serves its partition: per-source endpoints answer 421 Misdirected
// Request for users the shard does not own, and /healthz, /readyz and
// /v1/stats expose the shard spec so a router can verify its view of the
// cluster.
type Server struct {
	opts    Options
	cur     atomic.Pointer[state]
	start   time.Time
	metrics metrics
	// readyTarget is the event-log offset the served state must reach
	// before /readyz reports ready: the log size observed at boot, set by
	// the daemon before serving so a router never routes to a shard still
	// replaying its backlog. 0 (never set) means any loaded state is
	// ready.
	readyTarget atomic.Int64
	// ckpt is the durability surface: the newest checkpoint the served
	// model is covered by, published by a Checkpointer and read by
	// /v1/stats and /metrics. Nil when no checkpointer runs.
	ckpt atomic.Pointer[CheckpointStatus]
	// inflight tracks admitted compute queries for the MaxInFlight bound
	// (and the trustd_inflight gauge).
	inflight atomic.Int64
	// heat tracks per-key propagation query heat across swaps for the
	// precompute engine; it outlives individual states deliberately (the
	// working set is a property of the traffic, not of one model).
	heat *heatTracker
	// computeGate, when non-nil, runs on the leader goroutine right
	// before a row computation. Test hook: the singleflight test parks
	// the leader here until every concurrent request has registered.
	computeGate func(u ratings.UserID)
}

// setCheckpointStatus publishes the newest durable state; nil-safe
// concurrent reads come through checkpointStatus.
func (s *Server) setCheckpointStatus(st *CheckpointStatus) { s.ckpt.Store(st) }

// checkpointStatus returns the last published checkpoint status, or nil
// when none has been written this process.
func (s *Server) checkpointStatus() *CheckpointStatus { return s.ckpt.Load() }

// metrics is the server's instrumentation, exposed at /metrics in
// Prometheus text format. All fields are monotonic counters except the
// gauges derived from the current state at scrape time.
type metrics struct {
	requests         [numEndpoints]atomic.Int64 // indexed by endpoint constants below
	badRequests      atomic.Int64
	cacheHits        atomic.Int64
	cacheMisses      atomic.Int64
	rowComputes      atomic.Int64 // misses that actually evaluated a row (not coalesced)
	swaps            atomic.Int64
	eventsIngested   atomic.Int64
	truncatedReads   atomic.Int64
	lastSwapNanos    atomic.Int64
	checkpointWrites atomic.Int64
	checkpointErrors atomic.Int64
	// misdirected counts per-source requests for users this shard does
	// not own (answered 421): nonzero in steady state means a router is
	// hashing against a different shard map than this process.
	misdirected atomic.Int64
	// Propagation serving instrumentation: per-algorithm request
	// counters, the graph traversals actually performed (cache misses
	// minus coalesced flights), cumulative wall-clock spent in the
	// propagate handler (nanoseconds; rate() gives mean latency), and
	// the latency of the most recent request.
	propagateRequests  [3]atomic.Int64 // indexed by PropagationAlgo (exact and pruned share)
	propagateComputes  atomic.Int64
	propagateNanos     atomic.Int64
	propagateLastNanos atomic.Int64
	// Incremental-swap instrumentation: result-cache entries migrated
	// across swaps (and the ones dropped as possibly stale), the dirty-row
	// count of the last swap (-1 when the swap was a full rebuild), and
	// the power iterations behind the served rank vector.
	cacheCarryover        atomic.Int64
	cacheCarryoverDropped atomic.Int64
	graphDeltaRows        atomic.Int64
	// Anomaly-scoring instrumentation: full cold scoring passes vs
	// incremental swap-time refreshes.
	anomalyComputes  atomic.Int64
	anomalyRefreshes atomic.Int64
	// Propagation precompute engine: swaps that ran a precompute pass,
	// vectors pre-warmed into the cache, passes that ran out of budget
	// with hot work remaining, and cache hits served off a pre-warmed
	// entry (first hit per entry — traversals actually skipped).
	precomputeRuns            atomic.Int64
	precomputeVectors         atomic.Int64
	precomputeBudgetExhausted atomic.Int64
	prewarmHits               atomic.Int64
	// Landmark sketches: cold builds, eager swap-time refreshes, and the
	// cumulative wall-clock both spend.
	landmarkBuilds       atomic.Int64
	landmarkRefreshes    atomic.Int64
	landmarkRefreshNanos atomic.Int64
	// Robustness instrumentation: compute queries shed with 429 under the
	// in-flight bound, and tail polls that failed transiently (log
	// temporarily unreadable) and were retried with backoff instead of
	// killing ingest.
	shed          atomic.Int64
	tailTransient atomic.Int64
}

const (
	epTopK = iota
	epTrust
	epExpertise
	epStats
	epNeighbors
	epPropagate
	epGraphStats
	epRank
	epAnomaly
	epAnomalyTop
	numEndpoints
)

// endpointNames labels the requests counter in /metrics, indexed by the
// endpoint constants.
var endpointNames = [numEndpoints]string{
	"topk", "trust", "expertise", "stats", "neighbors", "propagate", "graph_stats", "rank",
	"anomaly", "anomaly_top",
}

// New wraps a derived model for serving. offset is the event-log position
// the model reflects (0 when serving a snapshot with no log).
func New(model *weboftrust.TrustModel, offset int64, opts Options) *Server {
	if opts.CacheResults == 0 {
		opts.CacheResults = DefaultCacheResults
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = DefaultCacheBytes
	}
	s := &Server{opts: opts, start: time.Now(), heat: newHeatTracker()}
	s.cur.Store(s.newState(model, offset, 1, nil))
	return s
}

// NewPending creates a server with no model yet: every query answers 503
// until the first Swap publishes one. It lets the daemon bind its listen
// address before the (possibly long) boot replay, so load balancers and
// routers can health-check the process and watch /readyz flip instead of
// getting connection refused.
func NewPending(opts Options) *Server {
	if opts.CacheResults == 0 {
		opts.CacheResults = DefaultCacheResults
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = DefaultCacheBytes
	}
	return &Server{opts: opts, start: time.Now(), heat: newHeatTracker()}
}

// SetReadyTarget sets the event-log offset the served state must reach
// before /readyz reports ready (the log size observed at boot). Call
// before serving; 0 means any loaded state is ready.
func (s *Server) SetReadyTarget(offset int64) { s.readyTarget.Store(offset) }

// newState builds the immutable serving state for a model. When prev is
// the state being replaced AND the model was produced by core.Update
// FROM prev's model (parent id match), the swap is incremental: the new
// state inherits every result-cache entry the dirty set proves unchanged
// (see migrateCache) and an eagerly warm-refreshed rank vector instead
// of a lazy cold solve. Root states (boot, restore, full rebuilds) start
// empty and solve ranks lazily.
func (s *Server) newState(model *weboftrust.TrustModel, offset int64, version uint64, prev *state) *state {
	st := &state{
		model:   model,
		offset:  offset,
		version: version,
		results: newResultCache(s.opts.CacheResults, s.opts.CacheBytes),
		rows:    newRowPool(model.Dataset().NumUsers()),
		flights: newFlightGroup(),
		rank:    lazyRank(model),
	}
	st.anomaly = s.lazyAnomaly(model)
	if prev == nil || prev.model == nil ||
		model.ParentID() == 0 || model.ParentID() != prev.model.ID() {
		st.landmarks = s.lazyLandmarks(st)
		s.metrics.graphDeltaRows.Store(-1)
		return st
	}
	dirty := model.DirtyUsers()
	if dirty == nil {
		st.landmarks = s.lazyLandmarks(st)
		s.metrics.graphDeltaRows.Store(-1)
		return st
	}
	var deltaRows int64
	for _, d := range dirty {
		if d {
			deltaRows++
		}
	}
	s.metrics.graphDeltaRows.Store(deltaRows)
	// Warm rank refresh: a bounded number of power iterations from the
	// predecessor's vector, on the ingest goroutine (the query path never
	// pays it). Forcing prev's rank here starts the chain: the first
	// incremental tick pays one cold solve, every later tick pays
	// rankRefreshIters.
	prevVec, _ := prev.rank.get()
	if vec, iters, err := model.GlobalRanksFrom(prevVec, rankRefreshIters); err == nil {
		st.rank = eagerRank(vec, iters)
	}
	// Same chain for anomaly scores: force the predecessor's, advance
	// them over the delta (bit-identical to a cold pass).
	st.anomaly = s.refreshAnomaly(model, prev, dirty)
	// The taint set — every source whose propagation result may have
	// changed — drives the cache carry-over, the landmark refresh AND the
	// precompute pass below, so compute it once. landmarks is created
	// after rank is finalised: its lazy selection reads st.rank at call
	// time, which on this path is the already-warm vector.
	st.landmarks = s.lazyLandmarks(st)
	var tainted []bool
	if prevWeb, ok := prev.model.WebOfTrustBuilt(); ok {
		tainted = taintedUsers(prevWeb.Graph(), dirty)
	}
	s.refreshLandmarks(st, prev, tainted)
	s.migrateCache(st, prev, dirty, tainted)
	// Precompute last: it must see the carried-over entries so it spends
	// its budget only on hot sources the taint drop actually evicted.
	if s.opts.PrecomputeBudget > 0 {
		s.precompute(st, s.opts.PrecomputeBudget)
	}
	return st
}

// Swap atomically replaces the served model. Readers in flight keep the
// state they loaded; new requests see the new model with a result cache
// holding the predecessor entries the update provably left unchanged
// (empty on non-incremental swaps) and a pool sized to the new user
// count. Safe for one writer; queries never block on it. The first Swap
// into a pending server publishes version 1 — the same version New
// stamps — so a boot-then-swap daemon and a New-constructed one number
// their states identically.
func (s *Server) Swap(model *weboftrust.TrustModel, offset int64) {
	var version uint64 = 1
	prev := s.cur.Load()
	if prev != nil {
		version = prev.version + 1
	}
	// Fold the since-last-swap query counts into the heat EWMA before
	// building the state, so the precompute pass ranks sources by the
	// freshest traffic.
	s.heat.fold()
	s.cur.Store(s.newState(model, offset, version, prev))
	s.metrics.swaps.Add(1)
	s.metrics.lastSwapNanos.Store(time.Now().UnixNano())
}

// Current returns the served model, its event-log offset and version —
// (nil, 0, 0) while a pending server awaits its first Swap.
func (s *Server) Current() (*weboftrust.TrustModel, int64, uint64) {
	st := s.cur.Load()
	if st == nil {
		return nil, 0, 0
	}
	return st.model, st.offset, st.version
}

// topKCacheFloor is the smallest k a result is ranked and cached at (the
// serving default).
const topKCacheFloor = 10

// cacheK returns the k a request for k is ranked and cached at: at least
// the floor, doubled until it covers k, clamped to the user count (every
// k >= U is the same full ranking). Nearby ks land on one key, so a
// client sweeping k does one row evaluation and O(k) cache bytes instead
// of one of each per distinct k; the answer stays exact because a ranked
// result is a strict total order truncated only at zero scores, so any
// prefix of a larger ranking IS the smaller one.
func cacheK(k, numU int) int {
	// Clamp before doubling: every k >= U is the same full ranking, and
	// an unclamped loop would overflow into a spin for k near MaxInt.
	if k >= numU {
		return numU
	}
	kc := topKCacheFloor
	for kc < k {
		kc *= 2
	}
	return min(kc, numU)
}

// fillScore computes the score vector one result family ranks: the
// one-hop trust row for kindTopK, a propagation algorithm's full rank
// vector for the propagate kinds. Every entry of dst is overwritten
// (buffers are pooled dirty) and the source's own entry is zeroed.
func (s *Server) fillScore(st *state, kind resultKind, u ratings.UserID, dst []float64) {
	switch kind {
	case kindTopK:
		st.model.Artifacts().Trust.RowAuto(u, dst)
		dst[u] = 0 // exclude self, matching TopTrusted
		s.metrics.rowComputes.Add(1)
	case kindAnomalyTop:
		// One global vector (u is always 0); no self-exclusion — user 0's
		// score is as rankable as anyone's.
		fillAnomaly(st, dst)
	case kindAppleseedLandmark, kindMoleTrustLandmark, kindTidalTrustLandmark:
		// Landmark composition instead of a traversal: O(L·U) over the
		// state's sketch (built lazily on the first landmark query of
		// this algorithm, eagerly refreshed across incremental swaps).
		algo := weboftrust.PropagationAlgo(kind - kindAppleseedLandmark)
		sk := st.landmarks.algos[algo].get()
		if err := st.model.ComposeLandmarks(sk, u, dst); err != nil {
			panic(fmt.Sprintf("server: landmark compose %v for user %d: %v", algo, u, err))
		}
		s.metrics.propagateComputes.Add(1)
	default:
		// The source is range-checked by the handler and the algorithm
		// fixed by the route, so the only error the propagation facade can
		// return is an impossible one; panic like any other broken
		// invariant (the flight protocol below recovers followers either
		// way).
		algo, exact := propagateAlgo(kind)
		var err error
		if exact {
			err = st.model.PropagateExactInto(algo, u, dst)
		} else {
			err = st.model.PropagateInto(algo, u, dst)
		}
		if err != nil {
			panic(fmt.Sprintf("server: propagate %v for user %d: %v", kind, u, err))
		}
		s.metrics.propagateComputes.Add(1)
	}
}

// propagateAlgo maps a propagate result kind to its facade algorithm and
// whether it is an exact-mode (complete-graph) variant.
func propagateAlgo(kind resultKind) (weboftrust.PropagationAlgo, bool) {
	if kind >= kindAppleseedExact {
		return weboftrust.PropagationAlgo(kind - kindAppleseedExact), true
	}
	return weboftrust.PropagationAlgo(kind - kindAppleseed), false
}

// ranked returns user u's top-k result for one result family from the
// state's result cache, computing it on a miss: the score vector (trust
// row or propagation ranks) is evaluated into a pooled scratch buffer —
// coalesced across concurrent misses for the same (kind, user) by the
// state's flight group — ranked with the bounded heap, and only the
// O(k)-byte ranked slice is retained, byte-accounted against the shared
// LRU budget. The returned slice is shared and must not be modified.
func (s *Server) ranked(st *state, kind resultKind, u ratings.UserID, k int) []core.Ranked {
	kc := cacheK(k, st.model.Dataset().NumUsers())
	key := resultKey{kind: kind, user: u, k: kc}
	fkey := flightKey{kind: kind, user: u}
	for {
		if r, prewarmed, ok := st.results.get(key); ok {
			s.metrics.cacheHits.Add(1)
			if prewarmed {
				s.metrics.prewarmHits.Add(1)
			}
			return trimRanked(r, k)
		}
		s.metrics.cacheMisses.Add(1)
		f, follower := st.flights.join(fkey)
		if follower {
			// Another request is already computing this vector; wait for
			// it and rank the shared buffer with our own k.
			f.wg.Wait()
			if f.scratch == nil {
				// The leader died before publishing a vector (its panic
				// is its own request's failure); yield until its
				// unwinding unpublishes the dead flight, then retry — and
				// likely lead — instead of dereferencing nothing.
				runtime.Gosched()
				continue
			}
		} else {
			// The flight stays published until this function returns —
			// after the result reaches the cache — so misses arriving
			// while the leader ranks coalesce instead of re-leading; the
			// defer also guarantees a panicking computation can't strand
			// a flight that would hang every later miss in wg.Wait. The
			// leader's scratch reference is released only after the
			// unpublish: followers can join (and take references) right
			// up to that point, so an earlier release could recycle the
			// buffer under a late joiner.
			defer func() {
				st.flights.unpublish(fkey)
				if f.refs.Add(-1) == 0 && f.scratch != nil {
					st.rows.put(f.scratch)
				}
			}()
			func() {
				defer f.wg.Done()
				if s.computeGate != nil {
					s.computeGate(u)
				}
				sc := st.rows.get()
				s.fillScore(st, kind, u, sc.row)
				f.scratch = sc
			}()
		}
		var idx []int
		if !follower {
			idx = f.scratch.idx // followers rank with a per-call scratch
		}
		r := core.RankRowScratch(f.scratch.row, kc, idx)
		if follower && f.refs.Add(-1) == 0 {
			// The last participant (always a follower here: the leader
			// holds its reference until the deferred unpublish) recycles
			// the shared scratch.
			st.rows.put(f.scratch)
		}
		if cap(r) > len(r) {
			// Cache an exact-length copy: the ranked slice was sized for
			// kc candidates but zero scores may have trimmed it.
			r = append(make([]core.Ranked, 0, len(r)), r...)
		}
		st.results.put(key, r)
		return trimRanked(r, k)
	}
}

// trimRanked returns the exact top-k prefix of a result ranked at a
// larger k.
func trimRanked(r []core.Ranked, k int) []core.Ranked {
	if len(r) > k {
		return r[:k]
	}
	return r
}

// Handler returns the daemon's HTTP routes. The compute endpoints sit
// behind the in-flight admission bound (when Options.MaxInFlight is
// set); the observability surfaces are deliberately outside it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/topk", s.admit(s.handleTopK))
	mux.HandleFunc("GET /v1/trust", s.admit(s.handleTrust))
	mux.HandleFunc("GET /v1/expertise", s.admit(s.handleExpertise))
	mux.HandleFunc("GET /v1/neighbors", s.admit(s.handleNeighbors))
	mux.HandleFunc("GET /v1/propagate", s.admit(s.handlePropagate))
	mux.HandleFunc("GET /v1/rank", s.admit(s.handleRank))
	mux.HandleFunc("GET /v1/anomaly", s.admit(s.handleAnomaly))
	mux.HandleFunc("GET /v1/anomaly/top", s.admit(s.handleAnomalyTop))
	mux.HandleFunc("GET /v1/graph/stats", s.handleGraphStats)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// admit enforces the bounded in-flight admission gate: a compute query
// arriving while MaxInFlight are already being served is shed
// immediately with 429 + Retry-After (and counted in trustd_shed_total)
// rather than queued — under overload, fast honest rejection keeps the
// admitted requests' latency bounded and tells well-behaved clients
// (and the router's retry layer) to back off. Disabled (the default)
// it adds nothing to the hot path but one branch.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if max := int64(s.opts.MaxInFlight); max > 0 {
			if s.inflight.Add(1) > max {
				s.inflight.Add(-1)
				s.metrics.shed.Add(1)
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests, map[string]string{
					"error": fmt.Sprintf("overloaded: %d requests in flight", max),
				})
				return
			}
			defer s.inflight.Add(-1)
		}
		h(w, r)
	}
}

// loadState returns the served state, answering 503 when the server is
// still pending its first model (NewPending before the boot completes).
func (s *Server) loadState(w http.ResponseWriter) (*state, bool) {
	st := s.cur.Load()
	if st == nil {
		s.fail(w, http.StatusServiceUnavailable, "starting up: no model loaded yet")
		return nil, false
	}
	return st, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.metrics.badRequests.Add(1)
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// userParam parses a user id query parameter and range-checks it against
// the dataset.
func (s *Server) userParam(w http.ResponseWriter, r *http.Request, st *state, name string) (ratings.UserID, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		s.fail(w, http.StatusBadRequest, "missing %q parameter", name)
		return 0, false
	}
	id, err := strconv.Atoi(raw)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad %q parameter %q", name, raw)
		return 0, false
	}
	if id < 0 || id >= st.model.Dataset().NumUsers() {
		s.fail(w, http.StatusNotFound, "user %d out of range (%d users)", id, st.model.Dataset().NumUsers())
		return 0, false
	}
	return ratings.UserID(id), true
}

// sourceParam is userParam for the SOURCE user of a per-source query: on
// a sharded server it additionally answers 421 Misdirected Request for
// users the shard does not own, telling a misconfigured client (or a
// router with a skewed shard map) which spec this process serves. The
// range check runs first, so out-of-range ids stay 404 on every shard —
// identical to the unsharded server.
func (s *Server) sourceParam(w http.ResponseWriter, r *http.Request, st *state, name string) (ratings.UserID, bool) {
	u, ok := s.userParam(w, r, st, name)
	if !ok {
		return 0, false
	}
	if !st.model.Owns(u) {
		idx, count := st.model.ShardSpec()
		s.metrics.misdirected.Add(1)
		s.fail(w, http.StatusMisdirectedRequest, "user %d is not owned by shard %d/%d", u, idx, count)
		return 0, false
	}
	return u, true
}

// kParam parses the optional "k" query parameter (default 10).
func (s *Server) kParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		var err error
		if k, err = strconv.Atoi(raw); err != nil || k < 1 {
			s.fail(w, http.StatusBadRequest, "bad \"k\" parameter %q", raw)
			return 0, false
		}
	}
	return k, true
}

// RankedUser is one /v1/topk result row.
type RankedUser struct {
	User  int     `json:"user"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// TopKResponse is the /v1/topk body.
type TopKResponse struct {
	User    int          `json:"user"`
	K       int          `json:"k"`
	Version uint64       `json:"version"`
	Results []RankedUser `json:"results"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epTopK].Add(1)
	st, ok := s.loadState(w)
	if !ok {
		return
	}
	u, ok := s.sourceParam(w, r, st, "user")
	if !ok {
		return
	}
	k, ok := s.kParam(w, r)
	if !ok {
		return
	}
	ranked := s.ranked(st, kindTopK, u, k)
	d := st.model.Dataset()
	results := make([]RankedUser, len(ranked))
	for i, rk := range ranked {
		results[i] = RankedUser{User: int(rk.User), Name: d.UserName(rk.User), Score: rk.Score}
	}
	writeJSON(w, http.StatusOK, TopKResponse{User: int(u), K: k, Version: st.version, Results: results})
}

// TrustResponse is the /v1/trust body.
type TrustResponse struct {
	From    int     `json:"from"`
	To      int     `json:"to"`
	Version uint64  `json:"version"`
	Score   float64 `json:"score"`
}

func (s *Server) handleTrust(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epTrust].Add(1)
	st, ok := s.loadState(w)
	if !ok {
		return
	}
	// The source must be owned (the trust row is partitioned state); the
	// target can be anyone (expertise is replicated).
	from, ok := s.sourceParam(w, r, st, "from")
	if !ok {
		return
	}
	to, ok := s.userParam(w, r, st, "to")
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, TrustResponse{
		From: int(from), To: int(to), Version: st.version,
		Score: st.model.Score(from, to),
	})
}

// CategoryProfile is one /v1/expertise result row.
type CategoryProfile struct {
	Category  int     `json:"category"`
	Name      string  `json:"name"`
	Expertise float64 `json:"expertise"`
	Affinity  float64 `json:"affinity"`
}

// ExpertiseResponse is the /v1/expertise body.
type ExpertiseResponse struct {
	User       int               `json:"user"`
	Name       string            `json:"name"`
	Version    uint64            `json:"version"`
	Categories []CategoryProfile `json:"categories"`
}

func (s *Server) handleExpertise(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epExpertise].Add(1)
	st, ok := s.loadState(w)
	if !ok {
		return
	}
	u, ok := s.sourceParam(w, r, st, "user")
	if !ok {
		return
	}
	d := st.model.Dataset()
	e := st.model.Expertise(u)
	a := st.model.Affinity(u)
	cats := make([]CategoryProfile, d.NumCategories())
	for c := range cats {
		cats[c] = CategoryProfile{
			Category:  c,
			Name:      d.CategoryName(ratings.CategoryID(c)),
			Expertise: e[c],
			Affinity:  a[c],
		}
	}
	writeJSON(w, http.StatusOK, ExpertiseResponse{
		User: int(u), Name: d.UserName(u), Version: st.version, Categories: cats,
	})
}

// NeighborEdge is one /v1/neighbors result row: a predicted-trust edge
// with its continuous T̂ weight.
type NeighborEdge struct {
	User   int     `json:"user"`
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// NeighborsResponse is the /v1/neighbors body: user u's out-edges in the
// served web of trust, in ascending user-id order, plus the effective
// generosity that sized the selection.
type NeighborsResponse struct {
	User       int            `json:"user"`
	Name       string         `json:"name"`
	Version    uint64         `json:"version"`
	Generosity float64        `json:"generosity"`
	Edges      []NeighborEdge `json:"edges"`
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epNeighbors].Add(1)
	st, ok := s.loadState(w)
	if !ok {
		return
	}
	u, ok := s.sourceParam(w, r, st, "user")
	if !ok {
		return
	}
	d := st.model.Dataset()
	web := st.model.WebOfTrust()
	to, weights := web.Neighbors(u)
	edges := make([]NeighborEdge, len(to))
	for i, j := range to {
		edges[i] = NeighborEdge{User: int(j), Name: d.UserName(ratings.UserID(j)), Weight: weights[i]}
	}
	writeJSON(w, http.StatusOK, NeighborsResponse{
		User: int(u), Name: d.UserName(u), Version: st.version,
		Generosity: web.Generosity(u), Edges: edges,
	})
}

// PropagateResponse is the /v1/propagate body: the k highest-ranked users
// from the source's viewpoint under the requested propagation algorithm,
// computed over the served web of trust.
type PropagateResponse struct {
	User    int    `json:"user"`
	Algo    string `json:"algo"`
	K       int    `json:"k"`
	Version uint64 `json:"version"`
	// Approx names the approximation mode that served the answer
	// ("landmark"); absent for traversal-computed results, keeping the
	// historical body unchanged.
	Approx  string       `json:"approx,omitempty"`
	Results []RankedUser `json:"results"`
}

func (s *Server) handlePropagate(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epPropagate].Add(1)
	st, ok := s.loadState(w)
	if !ok {
		return
	}
	algo, err := weboftrust.ParsePropagationAlgo(r.URL.Query().Get("algo"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad \"algo\" parameter: %v", err)
		return
	}
	exact := false
	switch raw := r.URL.Query().Get("exact"); raw {
	case "", "0", "false":
	case "1", "true":
		exact = true
	default:
		s.fail(w, http.StatusBadRequest, "bad \"exact\" parameter %q", raw)
		return
	}
	approx := r.URL.Query().Get("approx")
	switch approx {
	case "":
	case "landmark":
		if exact {
			s.fail(w, http.StatusBadRequest, "\"approx\" and \"exact\" are mutually exclusive")
			return
		}
		if s.landmarkCount() == 0 {
			s.fail(w, http.StatusBadRequest, "landmark approximation is disabled on this server")
			return
		}
	default:
		s.fail(w, http.StatusBadRequest, "bad \"approx\" parameter %q (landmark)", approx)
		return
	}
	u, ok := s.sourceParam(w, r, st, "user")
	if !ok {
		return
	}
	k, ok := s.kParam(w, r)
	if !ok {
		return
	}
	start := time.Now()
	kind := kindAppleseed + resultKind(algo)
	switch {
	case exact:
		kind = kindAppleseedExact + resultKind(algo)
	case approx == "landmark":
		kind = kindAppleseedLandmark + resultKind(algo)
	}
	s.metrics.propagateRequests[algo].Add(1)
	s.heat.record(heatKey{kind: kind, user: u, k: cacheK(k, st.model.Dataset().NumUsers())})
	ranked := s.ranked(st, kind, u, k)
	elapsed := time.Since(start).Nanoseconds()
	s.metrics.propagateNanos.Add(elapsed)
	s.metrics.propagateLastNanos.Store(elapsed)
	d := st.model.Dataset()
	results := make([]RankedUser, len(ranked))
	for i, rk := range ranked {
		results[i] = RankedUser{User: int(rk.User), Name: d.UserName(rk.User), Score: rk.Score}
	}
	writeJSON(w, http.StatusOK, PropagateResponse{
		User: int(u), Algo: algo.String(), K: k, Version: st.version, Approx: approx, Results: results,
	})
}

// GraphStatsResponse is the /v1/graph/stats body: the shape of the served
// web of trust.
type GraphStatsResponse struct {
	Version        uint64  `json:"version"`
	Policy         string  `json:"policy"`
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	MaxOutDegree   int     `json:"max_out_degree"`
	MaxInDegree    int     `json:"max_in_degree"`
	MeanOutDegree  float64 `json:"mean_out_degree"`
	Isolated       int     `json:"isolated"`
	MeanGenerosity float64 `json:"mean_generosity"`
	// PrunedEdges and PruneTau describe the percolation-pruned companion
	// graph the propagation endpoints traverse; absent when the server
	// runs without pruning (tau 0), keeping the historical body unchanged.
	PrunedEdges *int    `json:"pruned_edges,omitempty"`
	PruneTau    float64 `json:"prune_tau,omitempty"`
}

func (s *Server) handleGraphStats(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epGraphStats].Add(1)
	st, ok := s.loadState(w)
	if !ok {
		return
	}
	web := st.model.WebOfTrust()
	deg := web.Graph().Degrees()
	var kSum float64
	for _, k := range web.GenerosityVector() {
		kSum += k
	}
	meanK := 0.0
	if web.NumUsers() > 0 {
		meanK = kSum / float64(web.NumUsers())
	}
	resp := GraphStatsResponse{
		Version:        st.version,
		Policy:         web.Policy().String(),
		Nodes:          deg.Nodes,
		Edges:          deg.Edges,
		MaxOutDegree:   deg.MaxOutDegree,
		MaxInDegree:    deg.MaxInDegree,
		MeanOutDegree:  deg.MeanOutDegree,
		Isolated:       deg.Isolated,
		MeanGenerosity: meanK,
	}
	if pg := web.PrunedGraph(); pg != nil {
		e := pg.NumEdges()
		resp.PrunedEdges = &e
		resp.PruneTau = web.Policy().PruneTau
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse is the /v1/stats body: dataset shape plus serving state.
// CacheEntries and CacheBytes expose the ranked-result cache, so the
// dense-row → O(k)-result memory win is visible in production.
type StatsResponse struct {
	Dataset       ratings.DatasetStats `json:"dataset"`
	Version       uint64               `json:"version"`
	LogOffset     int64                `json:"log_offset"`
	CacheEntries  int                  `json:"cache_entries"`
	CacheBytes    int64                `json:"cache_bytes"`
	UptimeSeconds float64              `json:"uptime_seconds"`
	// ShedRequests counts compute queries rejected 429 by the in-flight
	// admission bound; TailTransientErrors counts tail polls that failed
	// transiently and were retried with backoff. Both also appear in
	// /metrics (trustd_shed_total, trustd_tail_transient_errors_total).
	ShedRequests        int64 `json:"shed_requests"`
	TailTransientErrors int64 `json:"tail_transient_errors"`
	// Checkpoint reports the newest durable copy of the served model;
	// absent when the daemon runs without a checkpoint directory.
	Checkpoint *CheckpointStats `json:"checkpoint,omitempty"`
	// Shard reports this server's slice of a sharded deployment; absent
	// when unsharded, so single-process deployments see the historical
	// body unchanged.
	Shard *ShardStats `json:"shard,omitempty"`
	// Precompute reports the propagation precompute engine and the
	// landmark sketches; absent only when both are disabled.
	Precompute *PrecomputeStats `json:"precompute,omitempty"`
}

// PrecomputeStats is the propagation-precompute block of /v1/stats:
// swap-time pre-warm activity, the hits it saved, and the landmark
// configuration. PrewarmHits counts first hits on pre-warmed entries —
// full traversals queries did not pay.
type PrecomputeStats struct {
	BudgetMillis    int64 `json:"budget_millis"`
	Runs            int64 `json:"runs"`
	Vectors         int64 `json:"vectors"`
	BudgetExhausted int64 `json:"budget_exhausted"`
	PrewarmHits     int64 `json:"prewarm_hits"`
	Landmarks       int   `json:"landmarks"`
}

// ShardStats is the partition block of /v1/stats: the spec this process
// serves and how many of the community's users it owns dense state for.
type ShardStats struct {
	Index      int    `json:"index"`
	Count      int    `json:"count"`
	Spec       string `json:"spec"`
	OwnedUsers int    `json:"owned_users"`
}

// shardStats builds the /v1/stats and /healthz shard block, nil when the
// served model is unsharded.
func shardStats(m *weboftrust.TrustModel) *ShardStats {
	idx, count := m.ShardSpec()
	if count <= 1 {
		return nil
	}
	return &ShardStats{
		Index:      idx,
		Count:      count,
		Spec:       fmt.Sprintf("%d/%d", idx, count),
		OwnedUsers: m.Artifacts().Trust.OwnedUsers(),
	}
}

// CheckpointStats is the durability block of /v1/stats. AgeSeconds and
// the lag between Offset and LogOffset are the operator's staleness
// alarms: they bound how much replay the next boot pays.
type CheckpointStats struct {
	Path       string  `json:"path"`
	Offset     int64   `json:"offset"`
	SizeBytes  int64   `json:"size_bytes"`
	AgeSeconds float64 `json:"age_seconds"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epStats].Add(1)
	st, ok := s.loadState(w)
	if !ok {
		return
	}
	resp := StatsResponse{
		Dataset:             st.model.Dataset().Stats(),
		Version:             st.version,
		LogOffset:           st.offset,
		CacheEntries:        st.results.len(),
		CacheBytes:          st.results.approxBytes(),
		UptimeSeconds:       time.Since(s.start).Seconds(),
		ShedRequests:        s.metrics.shed.Load(),
		TailTransientErrors: s.metrics.tailTransient.Load(),
	}
	resp.Shard = shardStats(st.model)
	if s.opts.PrecomputeBudget > 0 || s.landmarkCount() > 0 {
		landmarks := s.landmarkCount()
		if ids, ok := st.landmarks.peekIDs(); ok {
			landmarks = len(ids)
		}
		resp.Precompute = &PrecomputeStats{
			BudgetMillis:    s.opts.PrecomputeBudget.Milliseconds(),
			Runs:            s.metrics.precomputeRuns.Load(),
			Vectors:         s.metrics.precomputeVectors.Load(),
			BudgetExhausted: s.metrics.precomputeBudgetExhausted.Load(),
			PrewarmHits:     s.metrics.prewarmHits.Load(),
			Landmarks:       landmarks,
		}
	}
	if ck := s.checkpointStatus(); ck != nil {
		resp.Checkpoint = &CheckpointStats{
			Path:       ck.Path,
			Offset:     ck.Offset,
			SizeBytes:  ck.SizeBytes,
			AgeSeconds: time.Since(ck.WrittenAt).Seconds(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is LIVENESS: it answers 200 as soon as the process can
// serve HTTP at all, model or not — restart the process if this fails.
// Routing decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cur.Load()
	if st == nil {
		writeJSON(w, http.StatusOK, map[string]any{"status": "starting"})
		return
	}
	body := map[string]any{
		"status":  "ok",
		"version": st.version,
		"offset":  st.offset,
	}
	if sh := shardStats(st.model); sh != nil {
		body["shard"] = sh.Spec
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz is READINESS: 200 only once a model is loaded AND its
// event-log offset has reached the ready target (the log size observed
// at boot), so a router never sends traffic to a shard still replaying
// the backlog it booted behind. A server never asked to wait (target 0)
// is ready as soon as it has a model.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.cur.Load()
	target := s.readyTarget.Load()
	if st == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "starting", "target": target,
		})
		return
	}
	body := map[string]any{
		"version": st.version,
		"offset":  st.offset,
		"target":  target,
	}
	if sh := shardStats(st.model); sh != nil {
		body["shard"] = sh.Spec
	}
	if st.offset < target {
		body["status"] = "catching-up"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body["status"] = "ready"
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cur.Load()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP trustd_requests_total Queries served, by endpoint.\n# TYPE trustd_requests_total counter\n")
	for i, ep := range endpointNames {
		fmt.Fprintf(w, "trustd_requests_total{endpoint=%q} %d\n", ep, s.metrics.requests[i].Load())
	}
	counter("trustd_bad_requests_total", "Requests rejected with a client error.", s.metrics.badRequests.Load())
	counter("trustd_shed_total", "Compute queries shed with 429 by the in-flight admission bound.", s.metrics.shed.Load())
	gauge("trustd_inflight", "Compute queries currently being served.", s.inflight.Load())
	counter("trustd_tail_transient_errors_total", "Tail polls that failed transiently (log unreadable) and were retried with backoff.", s.metrics.tailTransient.Load())
	counter("trustd_misdirected_requests_total", "Per-source requests for users this shard does not own (answered 421).", s.metrics.misdirected.Load())
	counter("trustd_result_cache_hits_total", "Ranked-result cache hits.", s.metrics.cacheHits.Load())
	counter("trustd_result_cache_misses_total", "Ranked-result cache misses.", s.metrics.cacheMisses.Load())
	counter("trustd_row_computes_total", "Trust rows actually evaluated (misses minus coalesced flights).", s.metrics.rowComputes.Load())
	counter("trustd_swaps_total", "Model swaps performed by ingest.", s.metrics.swaps.Load())
	counter("trustd_cache_carryover_total", "Result-cache entries migrated across incremental swaps (provably unchanged).", s.metrics.cacheCarryover.Load())
	counter("trustd_cache_carryover_dropped_total", "Result-cache entries dropped at swaps as possibly stale.", s.metrics.cacheCarryoverDropped.Load())
	gauge("trustd_graph_delta_rows", "Dirty rows rebuilt by the last swap's delta graph update; -1 when the last swap was a full rebuild.", s.metrics.graphDeltaRows.Load())
	counter("trustd_events_ingested_total", "Event-log records ingested since start.", s.metrics.eventsIngested.Load())
	counter("trustd_log_truncated_reads_total", "Tail reads that hit a torn final record.", s.metrics.truncatedReads.Load())
	// State-derived gauges are absent while a pending server awaits its
	// first model (counters above still scrape).
	if st != nil {
		gauge("trustd_model_version", "Version of the served model (increments per swap).", int64(st.version))
		gauge("trustd_log_offset_bytes", "Event-log offset the served model reflects.", st.offset)
		gauge("trustd_result_cache_entries", "Ranked results currently cached.", int64(st.results.len()))
		gauge("trustd_result_cache_bytes", "Approximate memory retained by the result cache.", st.results.approxBytes())
		if sh := shardStats(st.model); sh != nil {
			gauge("trustd_shard_index", "This server's shard index.", int64(sh.Index))
			gauge("trustd_shard_count", "Total shards in the deployment.", int64(sh.Count))
			gauge("trustd_shard_owned_users", "Users this shard owns dense state for.", int64(sh.OwnedUsers))
		}
	}
	counter("trustd_checkpoint_writes_total", "Checkpoints successfully written.", s.metrics.checkpointWrites.Load())
	counter("trustd_checkpoint_errors_total", "Checkpoint write or prune failures.", s.metrics.checkpointErrors.Load())
	if ck := s.checkpointStatus(); ck != nil {
		gauge("trustd_checkpoint_last_offset_bytes", "Event-log offset the newest checkpoint reflects.", ck.Offset)
		gauge("trustd_checkpoint_size_bytes", "Size of the newest checkpoint file.", ck.SizeBytes)
		fmt.Fprintf(w, "# HELP trustd_checkpoint_age_seconds Seconds since the newest checkpoint was written.\n# TYPE trustd_checkpoint_age_seconds gauge\ntrustd_checkpoint_age_seconds %g\n",
			time.Since(ck.WrittenAt).Seconds())
	}
	// Peek only: a scrape must never force the lazily rebuilt web of a
	// freshly restored model (the gauges appear once a graph consumer
	// has built it, or immediately after a pipeline-built swap).
	if st != nil {
		if web, ok := st.model.WebOfTrustBuilt(); ok {
			gauge("trustd_web_nodes", "Nodes in the served web of trust.", int64(web.NumUsers()))
			gauge("trustd_web_edges", "Directed trust edges in the served web of trust.", int64(web.NumEdges()))
			if pg := web.PrunedGraph(); pg != nil {
				gauge("trustd_web_pruned_edges", "Edges surviving percolation pruning in the propagation graph.", int64(pg.NumEdges()))
			}
		}
		// Peek only: the scrape must not force the cold rank solve of a
		// state nobody has queried /v1/rank on.
		if _, iters, ok := st.rank.peek(); ok {
			gauge("trustd_rank_iterations", "Power iterations behind the served global rank vector.", int64(iters))
		}
		// Peek only, same reason, for the anomaly scoring pass.
		if sc, ok := st.anomaly.peek(); ok && sc != nil {
			gauge("trustd_anomaly_scored_users", "Users covered by the served anomaly score vector.", int64(sc.NumUsers()))
			fmt.Fprintf(w, "# HELP trustd_anomaly_max_score Largest served per-user suspicion score.\n# TYPE trustd_anomaly_max_score gauge\ntrustd_anomaly_max_score %g\n",
				sc.MaxScore())
		}
	}
	counter("trustd_anomaly_computes_total", "Full anomaly scoring passes (cold states).", s.metrics.anomalyComputes.Load())
	counter("trustd_anomaly_refreshes_total", "Incremental anomaly refreshes performed at swap time.", s.metrics.anomalyRefreshes.Load())
	fmt.Fprintf(w, "# HELP trustd_propagate_requests_total Propagation queries served, by algorithm.\n# TYPE trustd_propagate_requests_total counter\n")
	for i, algo := range []string{"appleseed", "moletrust", "tidaltrust"} {
		fmt.Fprintf(w, "trustd_propagate_requests_total{algo=%q} %d\n", algo, s.metrics.propagateRequests[i].Load())
	}
	counter("trustd_propagate_computes_total", "Propagation rank vectors actually computed (cache misses minus coalesced flights).", s.metrics.propagateComputes.Load())
	counter("trustd_propagate_precompute_runs_total", "Swap-time propagation precompute passes run.", s.metrics.precomputeRuns.Load())
	counter("trustd_propagate_precompute_vectors_total", "Propagation vectors pre-warmed into the result cache at swap time.", s.metrics.precomputeVectors.Load())
	counter("trustd_propagate_precompute_budget_exhausted_total", "Precompute passes that ran out of budget with hot work remaining.", s.metrics.precomputeBudgetExhausted.Load())
	counter("trustd_result_cache_prewarm_hits_total", "First hits on pre-warmed cache entries (traversals queries skipped).", s.metrics.prewarmHits.Load())
	counter("trustd_landmark_builds_total", "Landmark sketches built cold (first landmark query of a state).", s.metrics.landmarkBuilds.Load())
	counter("trustd_landmark_refreshes_total", "Landmark sketches eagerly refreshed across incremental swaps.", s.metrics.landmarkRefreshes.Load())
	fmt.Fprintf(w, "# HELP trustd_landmark_refresh_seconds Cumulative wall-clock spent building and refreshing landmark sketches.\n# TYPE trustd_landmark_refresh_seconds counter\ntrustd_landmark_refresh_seconds %g\n",
		float64(s.metrics.landmarkRefreshNanos.Load())/1e9)
	if st != nil && st.landmarks != nil {
		// Peek only: the scrape must not force the landmark selection
		// (which would force the rank solve).
		landmarks := int64(st.landmarks.count)
		if ids, ok := st.landmarks.peekIDs(); ok {
			landmarks = int64(len(ids))
		}
		gauge("trustd_landmark_count", "Landmark hubs configured (selected count once derived).", landmarks)
	}
	fmt.Fprintf(w, "# HELP trustd_propagate_seconds_total Wall-clock spent serving propagation queries.\n# TYPE trustd_propagate_seconds_total counter\ntrustd_propagate_seconds_total %g\n",
		float64(s.metrics.propagateNanos.Load())/1e9)
	fmt.Fprintf(w, "# HELP trustd_propagate_last_seconds Latency of the most recent propagation query.\n# TYPE trustd_propagate_last_seconds gauge\ntrustd_propagate_last_seconds %g\n",
		float64(s.metrics.propagateLastNanos.Load())/1e9)
	if st != nil {
		d := st.model.Dataset()
		gauge("trustd_dataset_users", "Users in the served dataset.", int64(d.NumUsers()))
		gauge("trustd_dataset_categories", "Categories in the served dataset.", int64(d.NumCategories()))
		gauge("trustd_dataset_reviews", "Reviews in the served dataset.", int64(d.NumReviews()))
		gauge("trustd_dataset_ratings", "Ratings in the served dataset.", int64(d.NumRatings()))
	}
	gauge("trustd_last_swap_timestamp_nanos", "Unix time of the last model swap, 0 before any.", s.metrics.lastSwapNanos.Load())
}
