package server

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"weboftrust"
	"weboftrust/internal/checkpoint"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
)

// serversAgree asserts two servers answer /v1/topk, /v1/trust and
// /v1/expertise identically for every user (bitwise, via the JSON bodies).
func serversAgree(t *testing.T, a, b *Server) {
	t.Helper()
	ha, hb := a.Handler(), b.Handler()
	ma, _, _ := a.Current()
	mb, _, _ := b.Current()
	if ma.Dataset().NumUsers() != mb.Dataset().NumUsers() {
		t.Fatalf("user counts differ: %d vs %d", ma.Dataset().NumUsers(), mb.Dataset().NumUsers())
	}
	numU := ma.Dataset().NumUsers()
	for u := 0; u < numU; u++ {
		for _, url := range []string{
			"/v1/topk?user=" + strconv.Itoa(u) + "&k=10",
			"/v1/expertise?user=" + strconv.Itoa(u),
			"/v1/trust?from=" + strconv.Itoa(u) + "&to=" + strconv.Itoa((u+7)%numU),
			// The graph surfaces exercise the restored side's lazily
			// rebuilt web of trust, which must match the eager one.
			"/v1/neighbors?user=" + strconv.Itoa(u),
			"/v1/propagate?algo=appleseed&user=" + strconv.Itoa(u) + "&k=10",
		} {
			ra, rb := get(t, ha, url), get(t, hb, url)
			if ra.Code != http.StatusOK || rb.Code != http.StatusOK {
				t.Fatalf("%s: status %d vs %d", url, ra.Code, rb.Code)
			}
			// Bodies embed the model version, which may legitimately
			// differ between a cold and warm boot; strip it.
			ba := stripVersion(ra.Body.String())
			bb := stripVersion(rb.Body.String())
			if ba != bb {
				t.Fatalf("%s: body mismatch\ncold: %s\nwarm: %s", url, ba, bb)
			}
		}
	}
}

func stripVersion(body string) string {
	i := strings.Index(body, `"version":`)
	if i < 0 {
		return body
	}
	j := strings.IndexAny(body[i:], ",}")
	return body[:i] + body[i+j:]
}

// appendEvents appends a small batch (a new user writing one rated
// review) and returns how many events were written.
func appendGrowth(t *testing.T, path string, d *ratings.Dataset, extraUsers int) int {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	n := 0
	users := d.NumUsers() + extraUsers
	objects := d.NumObjects() + extraUsers
	reviews := d.NumReviews() + extraUsers
	for _, ev := range []store.Event{
		{Kind: store.EvAddUser, Name: ""},
		{Kind: store.EvAddObject, Category: 0, Name: ""},
		{Kind: store.EvAddReview, User: ratings.UserID(users), Object: ratings.ObjectID(objects)},
		{Kind: store.EvAddRating, User: 1, Review: ratings.ReviewID(reviews), Level: 4},
	} {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestOpenCheckpointedColdPaths(t *testing.T) {
	path, _ := writeLogFile(t)

	// Empty dir string: exactly Open.
	srv, _, info, err := OpenCheckpointed(path, "", time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Warm || info.FallbackReason != "" {
		t.Fatalf("empty dir: info = %+v", info)
	}

	// A directory with no checkpoints: cold with a reason.
	srv2, _, info2, err := OpenCheckpointed(path, filepath.Join(t.TempDir(), "ckpts"), time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info2.Warm || info2.FallbackReason == "" {
		t.Fatalf("no checkpoints: info = %+v", info2)
	}
	serversAgree(t, srv, srv2)
}

func TestOpenCheckpointedWarmMatchesCold(t *testing.T) {
	path, d := writeLogFile(t)
	dir := filepath.Join(t.TempDir(), "ckpts")

	// Cold stack writes a checkpoint of its full state.
	cold, _, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpointer(cold, dir, time.Hour, 2)
	if _, wrote, err := ck.WriteNow(); err != nil || !wrote {
		t.Fatalf("WriteNow = (%v, %v)", wrote, err)
	}

	// Grow the log past the checkpoint; the warm boot must restore and
	// tail the difference.
	tailed := appendGrowth(t, path, d, 0)

	warm, warmTailer, info, err := OpenCheckpointed(path, dir, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Warm {
		t.Fatalf("boot went cold: %+v", info)
	}
	if info.TailedEvents != tailed {
		t.Fatalf("tailed %d events, want %d", info.TailedEvents, tailed)
	}

	// The warm boot seeds the durability surface from the restored file,
	// so stats report it immediately.
	stats := decode[StatsResponse](t, get(t, warm.Handler(), "/v1/stats"))
	if stats.Checkpoint == nil || stats.Checkpoint.Path != info.CheckpointPath {
		t.Fatalf("warm boot did not seed checkpoint stats: %+v", stats.Checkpoint)
	}

	// Reference: a fresh cold boot over the grown log.
	cold2, _, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	serversAgree(t, cold2, warm)

	// The warm tailer keeps ingesting from where the boot left off.
	appendGrowth(t, path, d, 1)
	n, err := warmTailer.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("poll ingested %d, want 4", n)
	}
}

// TestWarmBootIdleCheckpointerSkipsFirstWrite pins that a warm boot
// against an idle log makes the checkpointer's first tick a no-op: the
// on-disk checkpoint is already current, so rewriting a byte-identical
// one would only burn a sequence number.
func TestWarmBootIdleCheckpointerSkipsFirstWrite(t *testing.T) {
	path, _ := writeLogFile(t)
	dir := filepath.Join(t.TempDir(), "ckpts")
	cold, _, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p1, wrote, err := NewCheckpointer(cold, dir, time.Hour, 2).WriteNow()
	if err != nil || !wrote {
		t.Fatalf("WriteNow = (%v, %v)", wrote, err)
	}

	warm, _, info, err := OpenCheckpointed(path, dir, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Warm {
		t.Fatalf("boot went cold: %+v", info)
	}
	p2, wrote, err := NewCheckpointer(warm, dir, time.Hour, 2).WriteNow()
	if err != nil {
		t.Fatal(err)
	}
	if wrote || p2 != p1 {
		t.Fatalf("idle warm boot rewrote checkpoint: wrote=%v path=%s (restored %s)", wrote, p2, p1)
	}
}

func TestOpenCheckpointedSkipsStaleFingerprint(t *testing.T) {
	path, _ := writeLogFile(t)
	dir := filepath.Join(t.TempDir(), "ckpts")

	// Checkpoint written under a different derivation config.
	cold, _, err := Open(path, time.Hour, Options{}, weboftrust.WithoutExperienceDiscount())
	if err != nil {
		t.Fatal(err)
	}
	if _, wrote, err := NewCheckpointer(cold, dir, time.Hour, 2).WriteNow(); err != nil || !wrote {
		t.Fatalf("WriteNow = (%v, %v)", wrote, err)
	}

	srv, _, info, err := OpenCheckpointed(path, dir, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Warm {
		t.Fatal("stale checkpoint restored")
	}
	if !strings.Contains(info.FallbackReason, "fingerprint") {
		t.Fatalf("fallback reason %q does not mention the fingerprint", info.FallbackReason)
	}
	// And the model served matches the options asked for, not the
	// checkpoint's.
	ref, _, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	serversAgree(t, ref, srv)
}

func TestCheckpointerSkipsUnchangedAndSurfacesStatus(t *testing.T) {
	path, d := writeLogFile(t)
	dir := filepath.Join(t.TempDir(), "ckpts")
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpointer(srv, dir, time.Hour, 2)

	if _, wrote, err := ck.WriteNow(); err != nil || !wrote {
		t.Fatalf("first WriteNow = (%v, %v)", wrote, err)
	}
	if _, wrote, err := ck.WriteNow(); err != nil || wrote {
		t.Fatalf("unchanged WriteNow = (%v, %v), want skip", wrote, err)
	}

	// Ingest progress makes the next write real again.
	appendGrowth(t, path, d, 0)
	if _, err := tailer.Poll(); err != nil {
		t.Fatal(err)
	}
	p2, wrote, err := ck.WriteNow()
	if err != nil || !wrote {
		t.Fatalf("post-ingest WriteNow = (%v, %v)", wrote, err)
	}
	_, offset, _ := srv.Current()

	// Status is visible in /v1/stats and /metrics.
	stats := decode[StatsResponse](t, get(t, srv.Handler(), "/v1/stats"))
	if stats.Checkpoint == nil {
		t.Fatal("stats missing checkpoint block")
	}
	if stats.Checkpoint.Path != p2 || stats.Checkpoint.Offset != offset {
		t.Fatalf("stats checkpoint = %+v, want %s at %d", stats.Checkpoint, p2, offset)
	}
	if stats.Checkpoint.SizeBytes <= 0 || stats.Checkpoint.AgeSeconds < 0 {
		t.Fatalf("implausible checkpoint stats: %+v", stats.Checkpoint)
	}
	body := get(t, srv.Handler(), "/metrics").Body.String()
	for _, want := range []string{
		"trustd_checkpoint_writes_total 2",
		"trustd_checkpoint_errors_total 0",
		"trustd_checkpoint_last_offset_bytes",
		"trustd_checkpoint_size_bytes",
		"trustd_checkpoint_age_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestCheckpointerFinalWriteOnShutdown(t *testing.T) {
	path, _ := writeLogFile(t)
	dir := filepath.Join(t.TempDir(), "ckpts")
	srv, _, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpointer(srv, dir, time.Hour, 2)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ck.Run(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancel")
	}

	// The shutdown flush left a restorable checkpoint.
	_, info, err := checkpoint.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, srvOffset, _ := srv.Current()
	if info.Offset != srvOffset {
		t.Fatalf("final checkpoint at %d, server at %d", info.Offset, srvOffset)
	}
}
