package server

// Tests for the serving tier's cluster surfaces: the pending-server
// early-listen lifecycle (503 queries, liveness vs readiness split, the
// ready-target flip) and sharded ownership answers (421 for unowned
// sources, shard blocks in /healthz, /readyz and /v1/stats).

import (
	"net/http"
	"strings"
	"testing"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/shard"
)

// TestPendingServerLifecycle pins the early-listen contract: before the
// first Swap a pending server serves 503 queries but 200 liveness; the
// readiness flip tracks the ready target against the served offset.
func TestPendingServerLifecycle(t *testing.T) {
	_, d := writeLogFile(t)
	srv := NewPending(Options{})
	h := srv.Handler()

	if rec := get(t, h, "/v1/topk?user=0"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pending topk: %d %s, want 503", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/stats"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pending stats: %d, want 503", rec.Code)
	}
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "starting") {
		t.Fatalf("pending healthz: %d %s, want 200 starting", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pending readyz: %d, want 503", rec.Code)
	}
	// A scrape against a pending server must not panic and still serves
	// the process counters.
	if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK {
		t.Fatalf("pending metrics: %d", rec.Code)
	}

	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetReadyTarget(500)
	srv.Swap(model, 400)
	if _, _, version := srv.Current(); version != 1 {
		t.Fatalf("first swap version = %d, want 1 (same as New)", version)
	}
	if rec := get(t, h, "/v1/topk?user=0"); rec.Code != http.StatusOK {
		t.Fatalf("swapped topk: %d %s", rec.Code, rec.Body.String())
	}
	// Loaded but behind the boot offset: live, not ready.
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "catching-up") {
		t.Fatalf("behind target: readyz %d %s, want 503 catching-up", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("behind target: healthz %d, want 200 (liveness ignores readiness)", rec.Code)
	}
	srv.Swap(model, 500)
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ready") {
		t.Fatalf("caught up: readyz %d %s, want 200 ready", rec.Code, rec.Body.String())
	}
}

// TestShardedServerOwnership pins the partition surface: per-source
// queries answer 421 for unowned users (after the 404 range check), the
// target of /v1/trust may be anyone, and the shard spec shows up in
// /healthz, /readyz and /v1/stats.
func TestShardedServerOwnership(t *testing.T) {
	_, d := writeLogFile(t)
	spec := shard.Spec{Index: 1, Count: 3}
	model, err := weboftrust.Derive(d, weboftrust.WithShard(spec.Index, spec.Count))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(model, 0, Options{})
	h := srv.Handler()

	var owned, unowned ratings.UserID = 0, 0
	foundOwned, foundUnowned := false, false
	for u := 0; u < d.NumUsers(); u++ {
		if spec.Owns(u) && !foundOwned {
			owned, foundOwned = ratings.UserID(u), true
		}
		if !spec.Owns(u) && !foundUnowned {
			unowned, foundUnowned = ratings.UserID(u), true
		}
	}
	if !foundOwned || !foundUnowned {
		t.Fatalf("dataset too small to find owned and unowned users")
	}

	if rec := get(t, h, "/v1/topk?user="+itoa(int(owned))); rec.Code != http.StatusOK {
		t.Fatalf("owned topk: %d %s", rec.Code, rec.Body.String())
	}
	for _, p := range []string{"/v1/topk?user=", "/v1/expertise?user=", "/v1/neighbors?user=", "/v1/propagate?algo=appleseed&user="} {
		rec := get(t, h, p+itoa(int(unowned)))
		if rec.Code != http.StatusMisdirectedRequest {
			t.Fatalf("unowned %s: %d %s, want 421", p, rec.Code, rec.Body.String())
		}
		if !strings.Contains(rec.Body.String(), "shard 1/3") {
			t.Fatalf("421 body must name the shard spec: %s", rec.Body.String())
		}
	}
	// Range check precedes ownership: out-of-range ids stay 404 on every
	// shard, exactly like the unsharded server.
	if rec := get(t, h, "/v1/topk?user="+itoa(d.NumUsers())); rec.Code != http.StatusNotFound {
		t.Fatalf("out of range: %d, want 404", rec.Code)
	}
	// Trust: owned source + unowned target is fine (expertise is
	// replicated); unowned source is misdirected.
	if rec := get(t, h, "/v1/trust?from="+itoa(int(owned))+"&to="+itoa(int(unowned))); rec.Code != http.StatusOK {
		t.Fatalf("trust owned->unowned: %d %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/trust?from="+itoa(int(unowned))+"&to="+itoa(int(owned))); rec.Code != http.StatusMisdirectedRequest {
		t.Fatalf("trust unowned source: %d, want 421", rec.Code)
	}

	stats := decode[StatsResponse](t, get(t, h, "/v1/stats"))
	if stats.Shard == nil {
		t.Fatal("sharded /v1/stats must carry the shard block")
	}
	if stats.Shard.Spec != "1/3" || stats.Shard.OwnedUsers != spec.CountOwned(d.NumUsers()) {
		t.Fatalf("shard block = %+v, want spec 1/3 owning %d", stats.Shard, spec.CountOwned(d.NumUsers()))
	}
	for _, p := range []string{"/healthz", "/readyz"} {
		rec := get(t, h, p)
		if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"shard":"1/3"`) {
			t.Fatalf("%s: %d %s, want 200 with shard spec", p, rec.Code, rec.Body.String())
		}
	}
	if rec := get(t, h, "/metrics"); !strings.Contains(rec.Body.String(), "trustd_shard_owned_users") {
		t.Fatal("/metrics must export shard gauges on a sharded server")
	}

	// The unsharded body must be byte-stable: no shard block anywhere.
	um, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	uh := New(um, 0, Options{}).Handler()
	if body := get(t, uh, "/v1/stats").Body.String(); strings.Contains(body, `"shard"`) {
		t.Fatalf("unsharded /v1/stats must omit the shard block: %s", body)
	}
	if body := get(t, uh, "/healthz").Body.String(); strings.Contains(body, `"shard"`) {
		t.Fatalf("unsharded /healthz must omit the shard field: %s", body)
	}
}
