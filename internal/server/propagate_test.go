package server

import (
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
)

var allAlgos = []weboftrust.PropagationAlgo{
	weboftrust.PropagateAppleseed,
	weboftrust.PropagateMoleTrust,
	weboftrust.PropagateTidalTrust,
}

// TestNeighborsMatchesModel: /v1/neighbors serves exactly the facade's
// web rows, weights and generosity.
func TestNeighborsMatchesModel(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()
	model, _, _ := srv.Current()
	web := model.WebOfTrust()
	for u := 0; u < d.NumUsers(); u += 5 {
		rec := get(t, h, "/v1/neighbors?user="+itoa(u))
		if rec.Code != 200 {
			t.Fatalf("neighbors user %d: %d %s", u, rec.Code, rec.Body.String())
		}
		resp := decode[NeighborsResponse](t, rec)
		want := model.Neighbors(ratings.UserID(u))
		if resp.Generosity != web.Generosity(ratings.UserID(u)) {
			t.Errorf("user %d generosity = %v, want %v", u, resp.Generosity, web.Generosity(ratings.UserID(u)))
		}
		if len(resp.Edges) != len(want) {
			t.Fatalf("user %d: %d edges, want %d", u, len(resp.Edges), len(want))
		}
		for i, e := range resp.Edges {
			if e.User != int(want[i].User) || e.Weight != want[i].Score {
				t.Fatalf("user %d edge %d: got (%d, %v), want (%d, %v)",
					u, i, e.User, e.Weight, want[i].User, want[i].Score)
			}
		}
	}
}

// TestPropagateMatchesModel: every algorithm's endpoint result equals the
// facade's Propagate ranking.
func TestPropagateMatchesModel(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()
	model, _, _ := srv.Current()
	for _, algo := range allAlgos {
		for u := 0; u < d.NumUsers(); u += 11 {
			rec := get(t, h, "/v1/propagate?algo="+algo.String()+"&user="+itoa(u)+"&k=5")
			if rec.Code != 200 {
				t.Fatalf("propagate %s user %d: %d %s", algo, u, rec.Code, rec.Body.String())
			}
			resp := decode[PropagateResponse](t, rec)
			if resp.Algo != algo.String() {
				t.Fatalf("algo echoed %q, want %q", resp.Algo, algo)
			}
			want, err := model.Propagate(algo, ratings.UserID(u), 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Results) != len(want) {
				t.Fatalf("%s user %d: %d results, want %d", algo, u, len(resp.Results), len(want))
			}
			for i, rk := range want {
				if resp.Results[i].User != int(rk.User) || resp.Results[i].Score != rk.Score {
					t.Fatalf("%s user %d rank %d: got %+v, want {%d %v}",
						algo, u, i, resp.Results[i], rk.User, rk.Score)
				}
			}
		}
	}
}

// TestPropagateCachedAndInvalidatedOnSwap: a repeated propagate query is
// served from the ranked-result cache (no second graph traversal), and an
// ingest swap starts a fresh cache.
func TestPropagateCachedAndInvalidatedOnSwap(t *testing.T) {
	path, _ := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	url := "/v1/propagate?algo=appleseed&user=3&k=5"
	if rec := get(t, h, url); rec.Code != 200 {
		t.Fatalf("first: %d", rec.Code)
	}
	if got := srv.metrics.propagateComputes.Load(); got != 1 {
		t.Fatalf("computes after first = %d, want 1", got)
	}
	for i := 0; i < 5; i++ {
		if rec := get(t, h, url); rec.Code != 200 {
			t.Fatalf("repeat: %d", rec.Code)
		}
	}
	if got := srv.metrics.propagateComputes.Load(); got != 1 {
		t.Fatalf("computes after repeats = %d, want 1 (cache misses)", got)
	}
	// Distinct k under the bucketing floor shares the entry; distinct
	// algo does not.
	if rec := get(t, h, "/v1/propagate?algo=appleseed&user=3&k=9"); rec.Code != 200 {
		t.Fatal("k=9 failed")
	}
	if got := srv.metrics.propagateComputes.Load(); got != 1 {
		t.Fatalf("computes after k sweep = %d, want 1", got)
	}
	if rec := get(t, h, "/v1/propagate?algo=moletrust&user=3&k=5"); rec.Code != 200 {
		t.Fatal("moletrust failed")
	}
	if got := srv.metrics.propagateComputes.Load(); got != 2 {
		t.Fatalf("computes after algo change = %d, want 2", got)
	}

	// Swap: a propagate entry carries over only when its source provably
	// cannot reach a dirty row in the predecessor graph; otherwise the
	// same query recomputes against the fresh graph. Either way the
	// answer must equal a fresh propagation on the new model.
	prevModel := srv.cur.Load().model
	appendEvents(t, path, growBatch(prevModel.Dataset(), 0))
	if n, err := tailer.Poll(); err != nil || n == 0 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	newModel, _, _ := srv.Current()
	tainted := taintedUsers(prevModel.WebOfTrust().Graph(), newModel.DirtyUsers())
	before := srv.metrics.propagateComputes.Load()
	rec := get(t, h, url)
	if rec.Code != 200 {
		t.Fatalf("post-swap: %d", rec.Code)
	}
	got := srv.metrics.propagateComputes.Load()
	if tainted[3] && got != before+1 {
		t.Fatalf("computes after swap = %d, want %d (tainted source must recompute)", got, before+1)
	}
	if !tainted[3] && got != before {
		t.Fatalf("computes after swap = %d, want %d (untainted source must carry over)", got, before)
	}
	resp := decode[PropagateResponse](t, rec)
	want, err := newModel.Propagate(weboftrust.PropagateAppleseed, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(want) {
		t.Fatalf("post-swap propagate has %d results, want %d", len(resp.Results), len(want))
	}
	for i, rk := range want {
		if resp.Results[i].User != int(rk.User) || resp.Results[i].Score != rk.Score {
			t.Errorf("post-swap propagate[%d] = %+v, want {%d %v}", i, resp.Results[i], rk.User, rk.Score)
		}
	}
}

// TestGraphStatsEndpoint sanity-checks /v1/graph/stats against the served
// web and checks the new Prometheus surfaces appear.
func TestGraphStatsEndpoint(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()
	rec := get(t, h, "/v1/graph/stats")
	if rec.Code != 200 {
		t.Fatalf("graph/stats: %d", rec.Code)
	}
	resp := decode[GraphStatsResponse](t, rec)
	model, _, _ := srv.Current()
	web := model.WebOfTrust()
	if resp.Nodes != d.NumUsers() || resp.Edges != web.NumEdges() {
		t.Errorf("nodes/edges = %d/%d, want %d/%d", resp.Nodes, resp.Edges, d.NumUsers(), web.NumEdges())
	}
	if resp.Policy != "per-user-topk" {
		t.Errorf("policy = %q", resp.Policy)
	}
	if resp.Edges > 0 && resp.MeanOutDegree <= 0 {
		t.Errorf("mean out degree = %v with %d edges", resp.MeanOutDegree, resp.Edges)
	}

	// Trigger one propagate so the latency surfaces are non-zero.
	if rec := get(t, h, "/v1/propagate?algo=appleseed&user=1"); rec.Code != 200 {
		t.Fatalf("propagate: %d", rec.Code)
	}
	body := get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		"trustd_web_edges",
		"trustd_web_nodes",
		`trustd_propagate_requests_total{algo="appleseed"} 1`,
		"trustd_propagate_computes_total 1",
		"trustd_propagate_seconds_total",
		"trustd_propagate_last_seconds",
		`trustd_requests_total{endpoint="propagate"} 1`,
		`trustd_requests_total{endpoint="graph_stats"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestPropagateBadRequests covers parameter validation.
func TestPropagateBadRequests(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()
	for _, url := range []string{
		"/v1/propagate?user=1",                        // missing algo
		"/v1/propagate?algo=pagerank&user=1",          // unknown algo
		"/v1/propagate?algo=appleseed",                // missing user
		"/v1/propagate?algo=appleseed&user=abc",       // bad user
		"/v1/propagate?algo=appleseed&user=1&k=0",     // bad k
		"/v1/propagate?algo=appleseed&user=1&k=x",     // bad k
		"/v1/neighbors",                               // missing user
	} {
		if rec := get(t, h, url); rec.Code != 400 {
			t.Errorf("%s: code %d, want 400", url, rec.Code)
		}
	}
	over := itoa(d.NumUsers())
	if rec := get(t, h, "/v1/propagate?algo=appleseed&user="+over); rec.Code != 404 {
		t.Errorf("out-of-range user: code %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/v1/neighbors?user="+over); rec.Code != 404 {
		t.Errorf("out-of-range neighbors user: code %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/v1/neighbors?user=-2"); rec.Code != 404 {
		t.Errorf("negative neighbors user: code %d, want 404", rec.Code)
	}
}

// TestConcurrentPropagateDuringIngest is the propagation counterpart of
// the topk acceptance test: /v1/propagate and /v1/neighbors serve
// consistent answers while the tailer folds batches in concurrently, and
// after the dust settles every propagate answer matches a cold rebuild of
// the grown log. Run with -race.
func TestConcurrentPropagateDuringIngest(t *testing.T) {
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	const rounds = 5
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := (w*37 + i) % d.NumUsers()
				algo := allAlgos[(w+i)%len(allAlgos)]
				var url string
				if i%4 == 3 {
					url = "/v1/neighbors?user=" + itoa(u)
				} else {
					url = "/v1/propagate?algo=" + algo.String() + "&user=" + itoa(u) + "&k=5"
				}
				rec := httptest.NewRecorder()
				rec.Body.Reset()
				h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
				if rec.Code != 200 {
					t.Errorf("%s during ingest: %d %s", url, rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}

	cnt := newCounts(d)
	for i := 0; i < rounds; i++ {
		appendEvents(t, path, cnt.batch(i%2 == 0))
		if n, err := tailer.Poll(); err != nil || n == 0 {
			t.Fatalf("poll %d: n=%d err=%v", i, n, err)
		}
	}
	close(stop)
	wg.Wait()

	// Cold rebuild over the grown log must agree exactly on every
	// propagation family.
	events := readAllEvents(t, path)
	b := ratings.NewBuilder()
	if err := store.Replay(events, b); err != nil {
		t.Fatal(err)
	}
	cold, err := weboftrust.Derive(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range allAlgos {
		for u := 0; u < cold.Dataset().NumUsers(); u += 7 {
			rec := get(t, h, "/v1/propagate?algo="+algo.String()+"&user="+itoa(u)+"&k=10")
			resp := decode[PropagateResponse](t, rec)
			want, err := cold.Propagate(algo, ratings.UserID(u), 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Results) != len(want) {
				t.Fatalf("%s user %d: %d results, want %d", algo, u, len(resp.Results), len(want))
			}
			for i, rk := range want {
				if resp.Results[i].User != int(rk.User) || resp.Results[i].Score != rk.Score {
					t.Fatalf("%s user %d rank %d: got %+v, want {%d %v}",
						algo, u, i, resp.Results[i], rk.User, rk.Score)
				}
			}
		}
	}
}

// readAllEvents reads the complete event log.
func readAllEvents(t *testing.T, path string) []store.Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, _, err := store.ReadLogFrom(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

// TestPropagateKindAlgoMapping pins the correspondence between the
// cache's resultKind constants and the facade's PropagationAlgo values:
// the two enums are defined independently, and a mid-list insertion in
// one but not the other would silently cache one algorithm's results
// under another's key. The wire names are the cross-check.
func TestPropagateKindAlgoMapping(t *testing.T) {
	want := map[resultKind]string{
		kindAppleseed:  "appleseed",
		kindMoleTrust:  "moletrust",
		kindTidalTrust: "tidaltrust",
	}
	for kind, name := range want {
		algo, exact := propagateAlgo(kind)
		if algo.String() != name || exact {
			t.Errorf("kind %d maps to algo %q exact=%v, want %q exact=false", kind, algo, exact, name)
		}
		parsed, err := weboftrust.ParsePropagationAlgo(name)
		if err != nil || kindAppleseed+resultKind(parsed) != kind {
			t.Errorf("round trip for %q: parsed %v err %v", name, parsed, err)
		}
		// The exact-mode kinds mirror the plain ones in the same order.
		exKind := kindAppleseedExact + (kind - kindAppleseed)
		algo, exact = propagateAlgo(exKind)
		if algo.String() != name || !exact {
			t.Errorf("kind %d maps to algo %q exact=%v, want %q exact=true", exKind, algo, exact, name)
		}
		// So do the landmark kinds (handled by fillScore directly, never
		// by propagateAlgo's arithmetic — but the offset math in
		// handlePropagate and fillScore relies on the same order).
		lmKind := kindAppleseedLandmark + (kind - kindAppleseed)
		if lmAlgo := weboftrust.PropagationAlgo(lmKind - kindAppleseedLandmark); lmAlgo.String() != name {
			t.Errorf("landmark kind %d maps to algo %q, want %q", lmKind, lmAlgo, name)
		}
		if !isPropagateKind(kind) || !isPropagateKind(exKind) || !isPropagateKind(lmKind) {
			t.Errorf("propagate-family kinds %d/%d/%d not recognised by isPropagateKind", kind, exKind, lmKind)
		}
	}
	if isPropagateKind(kindTopK) || isPropagateKind(kindAnomalyTop) {
		t.Error("isPropagateKind claims a non-propagate kind")
	}
}
