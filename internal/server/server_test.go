package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"weboftrust"
	"weboftrust/internal/core"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

// writeLogFile generates a small community and writes it to an event log
// in a temp dir, returning the path and the dataset.
func writeLogFile(t *testing.T) (string, *ratings.Dataset) {
	t.Helper()
	cfg := synth.Small()
	cfg.NumUsers = 60
	cfg.TotalObjects = 30
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "events.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	if err := store.AppendDataset(lw, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, d
}

func openServer(t *testing.T) (*Server, *Tailer, *ratings.Dataset) {
	t.Helper()
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return srv, tailer, d
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

func decode[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(rec.Body).Decode(&v); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestTopKMatchesModel(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()
	model, _, _ := srv.Current()
	for u := 0; u < d.NumUsers(); u += 7 {
		rec := get(t, h, "/v1/topk?user="+itoa(u)+"&k=5")
		if rec.Code != http.StatusOK {
			t.Fatalf("topk(%d): %d %s", u, rec.Code, rec.Body.String())
		}
		resp := decode[TopKResponse](t, rec)
		want := model.TopTrusted(ratings.UserID(u), 5)
		if len(resp.Results) != len(want) {
			t.Fatalf("topk(%d): %d results, want %d", u, len(resp.Results), len(want))
		}
		for i, rk := range want {
			got := resp.Results[i]
			if got.User != int(rk.User) || got.Score != rk.Score || got.Name != d.UserName(rk.User) {
				t.Errorf("topk(%d)[%d] = %+v, want {%d %s %v}", u, i, got, rk.User, d.UserName(rk.User), rk.Score)
			}
		}
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestTrustAndExpertiseEndpoints(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()
	model, _, _ := srv.Current()

	rec := get(t, h, "/v1/trust?from=3&to=9")
	if rec.Code != http.StatusOK {
		t.Fatalf("trust: %d %s", rec.Code, rec.Body.String())
	}
	tr := decode[TrustResponse](t, rec)
	if want := model.Score(3, 9); tr.Score != want {
		t.Errorf("trust(3,9) = %v, want %v", tr.Score, want)
	}

	rec = get(t, h, "/v1/expertise?user=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("expertise: %d %s", rec.Code, rec.Body.String())
	}
	ex := decode[ExpertiseResponse](t, rec)
	if len(ex.Categories) != d.NumCategories() {
		t.Fatalf("expertise categories = %d, want %d", len(ex.Categories), d.NumCategories())
	}
	e, a := model.Expertise(4), model.Affinity(4)
	for c, prof := range ex.Categories {
		if prof.Expertise != e[c] || prof.Affinity != a[c] {
			t.Errorf("expertise[%d] = %+v, want e=%v a=%v", c, prof, e[c], a[c])
		}
		if prof.Name != d.CategoryName(ratings.CategoryID(c)) {
			t.Errorf("category name[%d] = %q", c, prof.Name)
		}
	}
}

func TestStatsHealthzMetrics(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()

	st := decode[StatsResponse](t, get(t, h, "/v1/stats"))
	if st.Dataset.Users != d.NumUsers() || st.Version != 1 || st.LogOffset <= 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.CacheEntries != 0 || st.CacheBytes != 0 {
		t.Errorf("cold cache: entries=%d bytes=%d, want 0/0", st.CacheEntries, st.CacheBytes)
	}

	// One top-k query retains one O(k) result: entries and the byte gauge
	// must both move, and the bytes must be result-sized, not row-sized.
	get(t, h, "/v1/topk?user=3&k=5")
	st = decode[StatsResponse](t, get(t, h, "/v1/stats"))
	if st.CacheEntries != 1 || st.CacheBytes <= 0 {
		t.Errorf("after topk: entries=%d bytes=%d, want 1/>0", st.CacheEntries, st.CacheBytes)
	}
	if rowBytes := int64(8 * d.NumUsers()); st.CacheBytes >= rowBytes {
		t.Errorf("cache_bytes = %d per entry, not O(k) (dense row would be %d)", st.CacheBytes, rowBytes)
	}

	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthz: %d %s", rec.Code, rec.Body.String())
	}

	body := get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		"trustd_requests_total{endpoint=\"stats\"} 2",
		"trustd_model_version 1",
		"trustd_dataset_users 60",
		"trustd_swaps_total 0",
		"trustd_result_cache_entries 1",
		"trustd_result_cache_misses_total 1",
		"trustd_row_computes_total 1",
		"trustd_result_cache_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestBadRequests(t *testing.T) {
	srv, _, _ := openServer(t)
	h := srv.Handler()
	for url, want := range map[string]int{
		"/v1/topk":                http.StatusBadRequest, // missing user
		"/v1/topk?user=abc":       http.StatusBadRequest,
		"/v1/topk?user=99999":     http.StatusNotFound,
		"/v1/topk?user=1&k=0":     http.StatusBadRequest,
		"/v1/topk?user=-1":        http.StatusNotFound,
		"/v1/trust?from=1":        http.StatusBadRequest, // missing to
		"/v1/expertise?user=bust": http.StatusBadRequest,
	} {
		if rec := get(t, h, url); rec.Code != want {
			t.Errorf("GET %s = %d, want %d", url, rec.Code, want)
		}
	}
	// Non-GET methods are rejected by the router.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/topk?user=1", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/topk = %d, want 405", rec.Code)
	}
}

func TestResultCacheHitsAndSwapInvalidation(t *testing.T) {
	srv, tailer, d := openServer(t)
	h := srv.Handler()

	get(t, h, "/v1/topk?user=5")
	get(t, h, "/v1/topk?user=5")
	get(t, h, "/v1/topk?user=5&k=3")  // k below the cache floor: exact prefix, still a hit
	get(t, h, "/v1/topk?user=5&k=15") // k above the floor: a distinct cached result
	if hits, misses := srv.metrics.cacheHits.Load(), srv.metrics.cacheMisses.Load(); hits != 2 || misses != 2 {
		t.Errorf("cache hits=%d misses=%d, want 2/2", hits, misses)
	}
	if computes := srv.metrics.rowComputes.Load(); computes != 2 {
		t.Errorf("row computes = %d, want 2 (one per uncoalesced miss)", computes)
	}
	// The prefix answer must be the exact top-3.
	model, _, _ := srv.Current()
	resp := decode[TopKResponse](t, get(t, h, "/v1/topk?user=5&k=3"))
	want := model.TopTrusted(5, 3)
	if len(resp.Results) != len(want) {
		t.Fatalf("k=3 prefix has %d results, want %d", len(resp.Results), len(want))
	}
	for i, rk := range want {
		if resp.Results[i].User != int(rk.User) || resp.Results[i].Score != rk.Score {
			t.Errorf("k=3 prefix[%d] = %+v, want {%d %v}", i, resp.Results[i], rk.User, rk.Score)
		}
	}

	// Append one event and swap. The swap is incremental, so cached
	// results for users the update provably left unchanged carry over into
	// the fresh state; entries for dirty users are dropped. Either way the
	// served answer must match a fresh compute against the NEW model.
	appendEvents(t, tailer.path, growBatch(d, 0))
	if n, err := tailer.Poll(); err != nil || n == 0 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	if _, _, version := srv.Current(); version != 2 {
		t.Fatalf("version = %d after swap", version)
	}
	newModel, _, _ := srv.Current()
	dirty := newModel.DirtyUsers()
	if dirty == nil {
		t.Fatal("incremental swap reported no dirty set")
	}
	missesBefore := srv.metrics.cacheMisses.Load()
	resp = decode[TopKResponse](t, get(t, h, "/v1/topk?user=5"))
	misses := srv.metrics.cacheMisses.Load()
	if dirty[5] && misses != missesBefore+1 {
		t.Errorf("post-swap misses = %d, want %d (dirty user must be dropped at swap)", misses, missesBefore+1)
	}
	if !dirty[5] && misses != missesBefore {
		t.Errorf("post-swap misses = %d, want %d (clean user's entry must carry over)", misses, missesBefore)
	}
	want = newModel.TopTrusted(5, 10)
	if len(resp.Results) != len(want) {
		t.Fatalf("post-swap topk has %d results, want %d", len(resp.Results), len(want))
	}
	for i, rk := range want {
		if resp.Results[i].User != int(rk.User) || resp.Results[i].Score != rk.Score {
			t.Errorf("post-swap topk[%d] = %+v, want {%d %v}", i, resp.Results[i], rk.User, rk.Score)
		}
	}
}

func TestResultCacheEvictionAndBytes(t *testing.T) {
	c := newResultCache(2, 0)
	ranked := func(n int) []core.Ranked {
		r := make([]core.Ranked, n)
		for i := range r {
			r[i] = core.Ranked{User: ratings.UserID(i), Score: 0.5}
		}
		return r
	}
	c.put(resultKey{user: 1, k: 5}, ranked(5))
	c.put(resultKey{user: 2, k: 5}, ranked(5))
	if want := 2 * entryBytes(ranked(5)); c.approxBytes() != want {
		t.Errorf("approxBytes = %d, want %d", c.approxBytes(), want)
	}
	if _, _, ok := c.get(resultKey{user: 1, k: 5}); !ok {
		t.Fatal("entry (1,5) missing")
	}
	c.put(resultKey{user: 3, k: 5}, ranked(3)) // evicts (2,5); (1,5) was just used
	if _, _, ok := c.get(resultKey{user: 2, k: 5}); ok {
		t.Error("LRU entry (2,5) not evicted")
	}
	if _, _, ok := c.get(resultKey{user: 1, k: 5}); !ok {
		t.Error("recently used entry (1,5) evicted")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	if want := entryBytes(ranked(5)) + entryBytes(ranked(3)); c.approxBytes() != want {
		t.Errorf("approxBytes after eviction = %d, want %d", c.approxBytes(), want)
	}
	// Replacing a key adjusts the byte accounting instead of double-counting.
	c.put(resultKey{user: 1, k: 5}, ranked(2))
	if want := entryBytes(ranked(2)) + entryBytes(ranked(3)); c.approxBytes() != want {
		t.Errorf("approxBytes after replace = %d, want %d", c.approxBytes(), want)
	}
	// Disabled cache accepts nothing.
	off := newResultCache(-1, 0)
	off.put(resultKey{user: 1, k: 5}, ranked(1))
	if off.len() != 0 || off.approxBytes() != 0 {
		t.Error("disabled cache stored a result")
	}

	// The byte budget evicts LRU entries even below the entry bound, but
	// never the entry just inserted — one oversized answer is cacheable.
	budget := newResultCache(100, 2*entryBytes(ranked(5)))
	budget.put(resultKey{user: 1, k: 5}, ranked(5))
	budget.put(resultKey{user: 2, k: 5}, ranked(5))
	budget.put(resultKey{user: 3, k: 5}, ranked(5)) // over budget: evicts (1,5)
	if _, _, ok := budget.get(resultKey{user: 1, k: 5}); ok {
		t.Error("byte budget did not evict the LRU entry")
	}
	if budget.len() != 2 || budget.approxBytes() > 2*entryBytes(ranked(5)) {
		t.Errorf("over budget: len=%d bytes=%d", budget.len(), budget.approxBytes())
	}
	huge := newResultCache(100, 64)
	huge.put(resultKey{user: 1, k: 50}, ranked(50)) // bigger than the whole budget
	if huge.len() != 1 {
		t.Error("oversized single entry was not retained")
	}
}

// TestOversizedKSharesOneEntry: every k >= U is the same full ranking,
// so the cache key is clamped to the user count and distinct oversized
// ks must neither recompute the row nor store duplicate entries.
func TestOversizedKSharesOneEntry(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()
	a := decode[TopKResponse](t, get(t, h, "/v1/topk?user=1&k=10000"))
	b := decode[TopKResponse](t, get(t, h, "/v1/topk?user=1&k=20000"))
	if computes := srv.metrics.rowComputes.Load(); computes != 1 {
		t.Errorf("row computes = %d, want 1 (oversized ks share a key)", computes)
	}
	if hits := srv.metrics.cacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if len(a.Results) != len(b.Results) || len(a.Results) >= d.NumUsers() {
		t.Errorf("oversized-k results: %d and %d rows for %d users", len(a.Results), len(b.Results), d.NumUsers())
	}
	st := decode[StatsResponse](t, get(t, h, "/v1/stats"))
	if st.CacheEntries != 1 {
		t.Errorf("cache entries = %d, want 1", st.CacheEntries)
	}

	// Adjacent above-floor ks share a doubling bucket (11 and 12 both
	// rank at 20): one more compute, then a prefix hit.
	c := decode[TopKResponse](t, get(t, h, "/v1/topk?user=1&k=12"))
	p := decode[TopKResponse](t, get(t, h, "/v1/topk?user=1&k=11"))
	if computes := srv.metrics.rowComputes.Load(); computes != 2 {
		t.Errorf("row computes after k sweep = %d, want 2 (bucketed key)", computes)
	}
	if len(p.Results) > 11 || len(c.Results) > 12 {
		t.Errorf("bucketed results not trimmed: %d and %d rows", len(p.Results), len(c.Results))
	}
	for i := range p.Results {
		if p.Results[i] != c.Results[i] {
			t.Errorf("k=11 result[%d] = %+v, want prefix of k=12 %+v", i, p.Results[i], c.Results[i])
		}
	}

	// A k at the integer limit must answer promptly (regression: the
	// unclamped cacheK doubling loop overflowed into an infinite spin).
	rec := get(t, h, "/v1/topk?user=1&k=9223372036854775807")
	if rec.Code != http.StatusOK {
		t.Errorf("k=MaxInt64: %d %s", rec.Code, rec.Body.String())
	}
}

// TestLeaderPanicFollowersRecover: when a leader panics with followers
// coalesced on its flight, the followers must observe the unpublished
// nil-scratch flight and retry (one of them leading the recomputation)
// rather than dereferencing nothing or hanging — the panic costs exactly
// the leader's request.
func TestLeaderPanicFollowersRecover(t *testing.T) {
	srv, _, _ := openServer(t)
	h := srv.Handler()
	const clients = 4
	var armed atomic.Bool
	armed.Store(true)
	srv.computeGate = func(u ratings.UserID) {
		if armed.Load() {
			// Wait for every request to coalesce, then die.
			deadline := time.Now().Add(5 * time.Second)
			for srv.cur.Load().flights.refsOf(u) < clients && time.Now().Before(deadline) {
				time.Sleep(50 * time.Microsecond)
			}
			armed.Store(false)
			panic("injected compute failure")
		}
	}
	codes := make(chan int, clients)
	for g := 0; g < clients; g++ {
		go func() {
			defer func() {
				if recover() != nil {
					codes <- -1 // the panicked leader's request
				}
			}()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/topk?user=11&k=5", nil))
			codes <- rec.Code
		}()
	}
	panics, oks := 0, 0
	for i := 0; i < clients; i++ {
		select {
		case c := <-codes:
			switch c {
			case -1:
				panics++
			case http.StatusOK:
				oks++
			default:
				t.Errorf("request returned %d", c)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("request hung after leader panic")
		}
	}
	if panics != 1 || oks != clients-1 {
		t.Errorf("panics=%d oks=%d, want 1/%d (panic costs only the leader)", panics, oks, clients-1)
	}
	if computes := srv.metrics.rowComputes.Load(); computes != 1 {
		t.Errorf("row computes = %d, want 1 (retry leader computes once)", computes)
	}
}

// TestLeaderPanicReleasesFlight: a panic during the leader's row
// computation must unpublish the flight and release its WaitGroup, so
// the failure costs one request instead of hanging every later miss for
// that user.
func TestLeaderPanicReleasesFlight(t *testing.T) {
	srv, _, _ := openServer(t)
	h := srv.Handler()
	armed := true
	srv.computeGate = func(u ratings.UserID) {
		if armed {
			armed = false
			panic("injected compute failure")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected panic did not propagate")
			}
		}()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/topk?user=9&k=5", nil))
	}()
	// The next request for the same user must not block on a dead flight.
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/topk?user=9&k=5", nil))
		done <- rec
	}()
	select {
	case rec := <-done:
		if rec.Code != http.StatusOK {
			t.Fatalf("post-panic request: %d %s", rec.Code, rec.Body.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request after leader panic hung on the dead flight")
	}
}

// TestSingleflightCoalescesConcurrentMisses is the ISSUE 3 thundering-herd
// guard: concurrent identical /v1/topk misses for one user must evaluate
// the trust row exactly once. The computeGate hook parks the leader until
// every other request has registered on its flight, so the schedule that
// used to recompute the row per request is forced deterministically.
func TestSingleflightCoalescesConcurrentMisses(t *testing.T) {
	srv, _, _ := openServer(t)
	h := srv.Handler()
	const clients = 8
	srv.computeGate = func(u ratings.UserID) {
		deadline := time.Now().Add(5 * time.Second)
		for srv.cur.Load().flights.refsOf(u) < clients {
			if time.Now().After(deadline) {
				return // let the test fail on the counter, not hang
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	bodies := make([]string, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/topk?user=7&k=5", nil))
			if rec.Code == http.StatusOK {
				bodies[g] = rec.Body.String()
			}
		}(g)
	}
	wg.Wait()
	if computes := srv.metrics.rowComputes.Load(); computes != 1 {
		t.Errorf("%d concurrent identical requests computed %d rows, want 1", clients, computes)
	}
	if misses := srv.metrics.cacheMisses.Load(); misses != clients {
		t.Errorf("misses = %d, want %d (every request raced the empty cache)", misses, clients)
	}
	for g := 1; g < clients; g++ {
		if bodies[g] == "" || bodies[g] != bodies[0] {
			t.Fatalf("request %d answer diverged:\n%s\nvs\n%s", g, bodies[g], bodies[0])
		}
	}
	// The coalesced answer must also be the correct one.
	model, _, _ := srv.Current()
	want := model.TopTrusted(7, 5)
	rec := get(t, h, "/v1/topk?user=7&k=5")
	resp := decode[TopKResponse](t, rec)
	if len(resp.Results) != len(want) {
		t.Fatalf("coalesced result has %d rows, want %d", len(resp.Results), len(want))
	}
	for i, rk := range want {
		if resp.Results[i].User != int(rk.User) || resp.Results[i].Score != rk.Score {
			t.Errorf("coalesced result[%d] = %+v, want {%d %v}", i, resp.Results[i], rk.User, rk.Score)
		}
	}
}

// growBatch fabricates a valid batch of appended events against the
// counts tracked in counts (which it advances), cycling categories.
type counts struct{ users, cats, objects, reviews int }

func newCounts(d *ratings.Dataset) *counts {
	return &counts{users: d.NumUsers(), cats: d.NumCategories(), objects: d.NumObjects(), reviews: d.NumReviews()}
}

func (c *counts) batch(newCat bool) []store.Event {
	writer := ratings.UserID(c.users)
	rater := ratings.UserID(c.users + 1)
	c.users += 2
	evs := []store.Event{
		{Kind: store.EvAddUser, Name: ""},
		{Kind: store.EvAddUser, Name: ""},
	}
	cat := ratings.CategoryID(c.objects % c.cats)
	if newCat {
		evs = append(evs, store.Event{Kind: store.EvAddCategory, Name: ""})
		cat = ratings.CategoryID(c.cats)
		c.cats++
	}
	for i := 0; i < 2; i++ {
		oid := ratings.ObjectID(c.objects)
		rid := ratings.ReviewID(c.reviews)
		c.objects++
		c.reviews++
		evs = append(evs,
			store.Event{Kind: store.EvAddObject, Category: cat},
			store.Event{Kind: store.EvAddReview, User: writer, Object: oid},
			store.Event{Kind: store.EvAddRating, User: rater, Review: rid, Level: uint8(1 + i*3)},
		)
	}
	// An explicit trust edge, so ingest also exercises the web artifact's
	// generosity maintenance.
	evs = append(evs, store.Event{Kind: store.EvAddTrust, User: rater, To: writer})
	return evs
}

func growBatch(d *ratings.Dataset, i int) []store.Event {
	return newCounts(d).batch(i%2 == 0)
}

func appendEvents(t *testing.T, path string, evs []store.Event) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	for _, ev := range evs {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// The acceptance test: /v1/topk serves correct answers while the tailer
// ingests appended events concurrently, and after the dust settles every
// query matches a cold rebuild of the grown log. Run with -race.
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	const rounds = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Every in-flight state has at least d.NumUsers() users,
				// so these ids are always valid.
				u := (w*131 + i) % d.NumUsers()
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/topk?user="+itoa(u)+"&k=5", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("topk during ingest: %d %s", rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}

	// Ingest rounds of growth (alternating new-category batches) while
	// the query goroutines hammer the handler.
	cnt := newCounts(d)
	for i := 0; i < rounds; i++ {
		appendEvents(t, path, cnt.batch(i%2 == 0))
		if n, err := tailer.Poll(); err != nil || n == 0 {
			t.Fatalf("poll %d: n=%d err=%v", i, n, err)
		}
	}
	close(stop)
	wg.Wait()

	model, offset, version := srv.Current()
	if version != uint64(1+rounds) {
		t.Errorf("version = %d, want %d", version, 1+rounds)
	}

	// Cold rebuild over the grown log must agree exactly.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	events, endOff, err := store.ReadLogFrom(f, 0)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if offset != endOff {
		t.Errorf("served offset = %d, log end = %d", offset, endOff)
	}
	b := ratings.NewBuilder()
	if err := store.Replay(events, b); err != nil {
		t.Fatal(err)
	}
	cold, err := weboftrust.Derive(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	coldD := cold.Dataset()
	if model.Dataset().NumUsers() != coldD.NumUsers() {
		t.Fatalf("served %d users, cold rebuild %d", model.Dataset().NumUsers(), coldD.NumUsers())
	}
	for u := 0; u < coldD.NumUsers(); u++ {
		rec := get(t, h, "/v1/topk?user="+itoa(u)+"&k=10")
		resp := decode[TopKResponse](t, rec)
		want := cold.TopTrusted(ratings.UserID(u), 10)
		if len(resp.Results) != len(want) {
			t.Fatalf("user %d: %d results, want %d", u, len(resp.Results), len(want))
		}
		for i, rk := range want {
			if resp.Results[i].User != int(rk.User) || resp.Results[i].Score != rk.Score {
				t.Fatalf("user %d rank %d: got %+v, want {%d %v}", u, i, resp.Results[i], rk.User, rk.Score)
			}
		}
	}
}

// A torn final record pauses ingest at the tear without erroring, and the
// tailer picks the record up once the writer completes it.
func TestTailerToleratesTornTail(t *testing.T) {
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Serialise a batch, then append only part of its last record.
	tmp := filepath.Join(t.TempDir(), "batch.bin")
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	for _, ev := range growBatch(d, 0) {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	whole, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}

	logF, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := logF.Write(whole[:len(whole)-3]); err != nil {
		t.Fatal(err)
	}
	logF.Close()

	n, err := tailer.Poll()
	if err != nil {
		t.Fatalf("poll over torn tail: %v", err)
	}
	if n == 0 {
		t.Fatal("torn tail: intact prefix not ingested")
	}
	if srv.metrics.truncatedReads.Load() != 1 {
		t.Error("truncated read not counted")
	}
	beforeOffset := tailer.Offset()

	// Complete the record; the next poll ingests exactly the remainder.
	logF, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := logF.Write(whole[len(whole)-3:]); err != nil {
		t.Fatal(err)
	}
	logF.Close()
	n, err = tailer.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resume ingested %d events, want 1", n)
	}
	if tailer.Offset() <= beforeOffset {
		t.Error("offset did not advance on resume")
	}
}

// A poisoned log (an event that fails validation) must stop ingest for
// good: the first Poll reports the error, every later Poll repeats it
// instead of re-applying the partial replay, and the server keeps serving
// its last good model.
func TestTailerPoisonedByInvalidEvent(t *testing.T) {
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A valid user event followed by a self-rating (writer rating their
	// own review), which Replay rejects after mutating the builder.
	rev := d.Review(0)
	appendEvents(t, path, []store.Event{
		{Kind: store.EvAddUser, Name: "valid-before-poison"},
		{Kind: store.EvAddRating, User: rev.Writer, Review: 0, Level: 3},
	})
	if _, err := tailer.Poll(); err == nil {
		t.Fatal("poisoned log ingested")
	}
	first := tailer.failed
	if first == nil {
		t.Fatal("tailer not poisoned")
	}
	if n, err := tailer.Poll(); n != 0 || err != first {
		t.Errorf("retry after poison: n=%d err=%v, want sticky %v", n, err, first)
	}
	if _, _, version := srv.Current(); version != 1 {
		t.Errorf("version = %d, want 1 (no swap from a poisoned log)", version)
	}
}

func TestLoadgenAgainstLiveServer(t *testing.T) {
	srv, _, _ := openServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	report, err := RunLoadgen(context.Background(), LoadgenConfig{
		BaseURL:     ts.URL,
		Duration:    300 * time.Millisecond,
		Concurrency: 3,
		K:           5,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Error("loadgen made no requests")
	}
	if report.Errors != 0 {
		t.Errorf("loadgen saw %d errors", report.Errors)
	}
	if report.P50 <= 0 || report.Max < report.P99 {
		t.Errorf("implausible latency report: %+v", report)
	}
}

// TestOpenWithWorkersServesIdenticalModel opens the same log with serial
// and parallel derivation and checks the served rows match bitwise, then
// ingests a batch through the parallel tailer to cover the Update path
// (per-worker scratch included) end to end.
func TestOpenWithWorkersServesIdenticalModel(t *testing.T) {
	path, d := writeLogFile(t)
	serialSrv, _, err := Open(path, time.Hour, Options{}, weboftrust.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parSrv, parTailer, err := Open(path, time.Hour, Options{}, weboftrust.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	serialModel, _, _ := serialSrv.Current()
	parModel, _, _ := parSrv.Current()
	for u := 0; u < d.NumUsers(); u += 11 {
		a := serialModel.Artifacts().Trust.Row(ratings.UserID(u), nil)
		b := parModel.Artifacts().Trust.Row(ratings.UserID(u), nil)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("T̂[%d][%d]: serial %v != parallel %v", u, j, a[j], b[j])
			}
		}
	}

	// Append one rated review and poll: ingest must fold it in through
	// the parallel incremental update.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	for _, ev := range []store.Event{
		{Kind: store.EvAddObject, Category: 0},
		{Kind: store.EvAddReview, User: 1, Object: ratings.ObjectID(d.NumObjects())},
		{Kind: store.EvAddRating, User: 2, Review: ratings.ReviewID(d.NumReviews()), Level: 4},
	} {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := parTailer.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ingested %d events, want 3", n)
	}
	model, _, version := parSrv.Current()
	if version != 2 {
		t.Fatalf("version = %d after ingest, want 2", version)
	}
	if model.Dataset().NumReviews() != d.NumReviews()+1 {
		t.Fatalf("served dataset has %d reviews, want %d", model.Dataset().NumReviews(), d.NumReviews()+1)
	}
}
