package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

// writeLogFile generates a small community and writes it to an event log
// in a temp dir, returning the path and the dataset.
func writeLogFile(t *testing.T) (string, *ratings.Dataset) {
	t.Helper()
	cfg := synth.Small()
	cfg.NumUsers = 60
	cfg.TotalObjects = 30
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "events.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	if err := store.AppendDataset(lw, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, d
}

func openServer(t *testing.T) (*Server, *Tailer, *ratings.Dataset) {
	t.Helper()
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return srv, tailer, d
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

func decode[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(rec.Body).Decode(&v); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestTopKMatchesModel(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()
	model, _, _ := srv.Current()
	for u := 0; u < d.NumUsers(); u += 7 {
		rec := get(t, h, "/v1/topk?user="+itoa(u)+"&k=5")
		if rec.Code != http.StatusOK {
			t.Fatalf("topk(%d): %d %s", u, rec.Code, rec.Body.String())
		}
		resp := decode[TopKResponse](t, rec)
		want := model.TopTrusted(ratings.UserID(u), 5)
		if len(resp.Results) != len(want) {
			t.Fatalf("topk(%d): %d results, want %d", u, len(resp.Results), len(want))
		}
		for i, rk := range want {
			got := resp.Results[i]
			if got.User != int(rk.User) || got.Score != rk.Score || got.Name != d.UserName(rk.User) {
				t.Errorf("topk(%d)[%d] = %+v, want {%d %s %v}", u, i, got, rk.User, d.UserName(rk.User), rk.Score)
			}
		}
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestTrustAndExpertiseEndpoints(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()
	model, _, _ := srv.Current()

	rec := get(t, h, "/v1/trust?from=3&to=9")
	if rec.Code != http.StatusOK {
		t.Fatalf("trust: %d %s", rec.Code, rec.Body.String())
	}
	tr := decode[TrustResponse](t, rec)
	if want := model.Score(3, 9); tr.Score != want {
		t.Errorf("trust(3,9) = %v, want %v", tr.Score, want)
	}

	rec = get(t, h, "/v1/expertise?user=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("expertise: %d %s", rec.Code, rec.Body.String())
	}
	ex := decode[ExpertiseResponse](t, rec)
	if len(ex.Categories) != d.NumCategories() {
		t.Fatalf("expertise categories = %d, want %d", len(ex.Categories), d.NumCategories())
	}
	e, a := model.Expertise(4), model.Affinity(4)
	for c, prof := range ex.Categories {
		if prof.Expertise != e[c] || prof.Affinity != a[c] {
			t.Errorf("expertise[%d] = %+v, want e=%v a=%v", c, prof, e[c], a[c])
		}
		if prof.Name != d.CategoryName(ratings.CategoryID(c)) {
			t.Errorf("category name[%d] = %q", c, prof.Name)
		}
	}
}

func TestStatsHealthzMetrics(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()

	st := decode[StatsResponse](t, get(t, h, "/v1/stats"))
	if st.Dataset.Users != d.NumUsers() || st.Version != 1 || st.LogOffset <= 0 {
		t.Errorf("stats = %+v", st)
	}

	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthz: %d %s", rec.Code, rec.Body.String())
	}

	body := get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		"trustd_requests_total{endpoint=\"stats\"} 1",
		"trustd_model_version 1",
		"trustd_dataset_users 60",
		"trustd_swaps_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestBadRequests(t *testing.T) {
	srv, _, _ := openServer(t)
	h := srv.Handler()
	for url, want := range map[string]int{
		"/v1/topk":                http.StatusBadRequest, // missing user
		"/v1/topk?user=abc":       http.StatusBadRequest,
		"/v1/topk?user=99999":     http.StatusNotFound,
		"/v1/topk?user=1&k=0":     http.StatusBadRequest,
		"/v1/topk?user=-1":        http.StatusNotFound,
		"/v1/trust?from=1":        http.StatusBadRequest, // missing to
		"/v1/expertise?user=bust": http.StatusBadRequest,
	} {
		if rec := get(t, h, url); rec.Code != want {
			t.Errorf("GET %s = %d, want %d", url, rec.Code, want)
		}
	}
	// Non-GET methods are rejected by the router.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/topk?user=1", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/topk = %d, want 405", rec.Code)
	}
}

func TestRowCacheHitsAndSwapInvalidation(t *testing.T) {
	srv, tailer, d := openServer(t)
	h := srv.Handler()

	get(t, h, "/v1/topk?user=5")
	get(t, h, "/v1/topk?user=5")
	get(t, h, "/v1/topk?user=5&k=3") // same row, different k: still a hit
	if hits, misses := srv.metrics.cacheHits.Load(), srv.metrics.cacheMisses.Load(); hits != 2 || misses != 1 {
		t.Errorf("cache hits=%d misses=%d, want 2/1", hits, misses)
	}

	// Append one event and swap; the fresh state must start cold.
	appendEvents(t, tailer.path, growBatch(d, 0))
	if n, err := tailer.Poll(); err != nil || n == 0 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	if _, _, version := srv.Current(); version != 2 {
		t.Fatalf("version = %d after swap", version)
	}
	get(t, h, "/v1/topk?user=5")
	if misses := srv.metrics.cacheMisses.Load(); misses != 2 {
		t.Errorf("post-swap misses = %d, want 2 (swap must invalidate)", misses)
	}
}

func TestRowCacheEviction(t *testing.T) {
	c := newRowCache(2)
	c.put(1, []float64{1})
	c.put(2, []float64{2})
	if _, ok := c.get(1); !ok {
		t.Fatal("entry 1 missing")
	}
	c.put(3, []float64{3}) // evicts 2 (1 was just used)
	if _, ok := c.get(2); ok {
		t.Error("LRU entry 2 not evicted")
	}
	if _, ok := c.get(1); !ok {
		t.Error("recently used entry 1 evicted")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Disabled cache accepts nothing.
	off := newRowCache(-1)
	off.put(1, []float64{1})
	if off.len() != 0 {
		t.Error("disabled cache stored a row")
	}
}

// growBatch fabricates a valid batch of appended events against the
// counts tracked in counts (which it advances), cycling categories.
type counts struct{ users, cats, objects, reviews int }

func newCounts(d *ratings.Dataset) *counts {
	return &counts{users: d.NumUsers(), cats: d.NumCategories(), objects: d.NumObjects(), reviews: d.NumReviews()}
}

func (c *counts) batch(newCat bool) []store.Event {
	writer := ratings.UserID(c.users)
	rater := ratings.UserID(c.users + 1)
	c.users += 2
	evs := []store.Event{
		{Kind: store.EvAddUser, Name: ""},
		{Kind: store.EvAddUser, Name: ""},
	}
	cat := ratings.CategoryID(c.objects % c.cats)
	if newCat {
		evs = append(evs, store.Event{Kind: store.EvAddCategory, Name: ""})
		cat = ratings.CategoryID(c.cats)
		c.cats++
	}
	for i := 0; i < 2; i++ {
		oid := ratings.ObjectID(c.objects)
		rid := ratings.ReviewID(c.reviews)
		c.objects++
		c.reviews++
		evs = append(evs,
			store.Event{Kind: store.EvAddObject, Category: cat},
			store.Event{Kind: store.EvAddReview, User: writer, Object: oid},
			store.Event{Kind: store.EvAddRating, User: rater, Review: rid, Level: uint8(1 + i*3)},
		)
	}
	return evs
}

func growBatch(d *ratings.Dataset, i int) []store.Event {
	return newCounts(d).batch(i%2 == 0)
}

func appendEvents(t *testing.T, path string, evs []store.Event) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	for _, ev := range evs {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// The acceptance test: /v1/topk serves correct answers while the tailer
// ingests appended events concurrently, and after the dust settles every
// query matches a cold rebuild of the grown log. Run with -race.
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	const rounds = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Every in-flight state has at least d.NumUsers() users,
				// so these ids are always valid.
				u := (w*131 + i) % d.NumUsers()
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/topk?user="+itoa(u)+"&k=5", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("topk during ingest: %d %s", rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}

	// Ingest rounds of growth (alternating new-category batches) while
	// the query goroutines hammer the handler.
	cnt := newCounts(d)
	for i := 0; i < rounds; i++ {
		appendEvents(t, path, cnt.batch(i%2 == 0))
		if n, err := tailer.Poll(); err != nil || n == 0 {
			t.Fatalf("poll %d: n=%d err=%v", i, n, err)
		}
	}
	close(stop)
	wg.Wait()

	model, offset, version := srv.Current()
	if version != uint64(1+rounds) {
		t.Errorf("version = %d, want %d", version, 1+rounds)
	}

	// Cold rebuild over the grown log must agree exactly.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	events, endOff, err := store.ReadLogFrom(f, 0)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if offset != endOff {
		t.Errorf("served offset = %d, log end = %d", offset, endOff)
	}
	b := ratings.NewBuilder()
	if err := store.Replay(events, b); err != nil {
		t.Fatal(err)
	}
	cold, err := weboftrust.Derive(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	coldD := cold.Dataset()
	if model.Dataset().NumUsers() != coldD.NumUsers() {
		t.Fatalf("served %d users, cold rebuild %d", model.Dataset().NumUsers(), coldD.NumUsers())
	}
	for u := 0; u < coldD.NumUsers(); u++ {
		rec := get(t, h, "/v1/topk?user="+itoa(u)+"&k=10")
		resp := decode[TopKResponse](t, rec)
		want := cold.TopTrusted(ratings.UserID(u), 10)
		if len(resp.Results) != len(want) {
			t.Fatalf("user %d: %d results, want %d", u, len(resp.Results), len(want))
		}
		for i, rk := range want {
			if resp.Results[i].User != int(rk.User) || resp.Results[i].Score != rk.Score {
				t.Fatalf("user %d rank %d: got %+v, want {%d %v}", u, i, resp.Results[i], rk.User, rk.Score)
			}
		}
	}
}

// A torn final record pauses ingest at the tear without erroring, and the
// tailer picks the record up once the writer completes it.
func TestTailerToleratesTornTail(t *testing.T) {
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Serialise a batch, then append only part of its last record.
	tmp := filepath.Join(t.TempDir(), "batch.bin")
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	for _, ev := range growBatch(d, 0) {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	whole, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}

	logF, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := logF.Write(whole[:len(whole)-3]); err != nil {
		t.Fatal(err)
	}
	logF.Close()

	n, err := tailer.Poll()
	if err != nil {
		t.Fatalf("poll over torn tail: %v", err)
	}
	if n == 0 {
		t.Fatal("torn tail: intact prefix not ingested")
	}
	if srv.metrics.truncatedReads.Load() != 1 {
		t.Error("truncated read not counted")
	}
	beforeOffset := tailer.Offset()

	// Complete the record; the next poll ingests exactly the remainder.
	logF, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := logF.Write(whole[len(whole)-3:]); err != nil {
		t.Fatal(err)
	}
	logF.Close()
	n, err = tailer.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resume ingested %d events, want 1", n)
	}
	if tailer.Offset() <= beforeOffset {
		t.Error("offset did not advance on resume")
	}
}

// A poisoned log (an event that fails validation) must stop ingest for
// good: the first Poll reports the error, every later Poll repeats it
// instead of re-applying the partial replay, and the server keeps serving
// its last good model.
func TestTailerPoisonedByInvalidEvent(t *testing.T) {
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A valid user event followed by a self-rating (writer rating their
	// own review), which Replay rejects after mutating the builder.
	rev := d.Review(0)
	appendEvents(t, path, []store.Event{
		{Kind: store.EvAddUser, Name: "valid-before-poison"},
		{Kind: store.EvAddRating, User: rev.Writer, Review: 0, Level: 3},
	})
	if _, err := tailer.Poll(); err == nil {
		t.Fatal("poisoned log ingested")
	}
	first := tailer.failed
	if first == nil {
		t.Fatal("tailer not poisoned")
	}
	if n, err := tailer.Poll(); n != 0 || err != first {
		t.Errorf("retry after poison: n=%d err=%v, want sticky %v", n, err, first)
	}
	if _, _, version := srv.Current(); version != 1 {
		t.Errorf("version = %d, want 1 (no swap from a poisoned log)", version)
	}
}

func TestLoadgenAgainstLiveServer(t *testing.T) {
	srv, _, _ := openServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	report, err := RunLoadgen(context.Background(), LoadgenConfig{
		BaseURL:     ts.URL,
		Duration:    300 * time.Millisecond,
		Concurrency: 3,
		K:           5,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Error("loadgen made no requests")
	}
	if report.Errors != 0 {
		t.Errorf("loadgen saw %d errors", report.Errors)
	}
	if report.P50 <= 0 || report.Max < report.P99 {
		t.Errorf("implausible latency report: %+v", report)
	}
}

// TestOpenWithWorkersServesIdenticalModel opens the same log with serial
// and parallel derivation and checks the served rows match bitwise, then
// ingests a batch through the parallel tailer to cover the Update path
// (per-worker scratch included) end to end.
func TestOpenWithWorkersServesIdenticalModel(t *testing.T) {
	path, d := writeLogFile(t)
	serialSrv, _, err := Open(path, time.Hour, Options{}, weboftrust.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parSrv, parTailer, err := Open(path, time.Hour, Options{}, weboftrust.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	serialModel, _, _ := serialSrv.Current()
	parModel, _, _ := parSrv.Current()
	for u := 0; u < d.NumUsers(); u += 11 {
		a := serialModel.Artifacts().Trust.Row(ratings.UserID(u), nil)
		b := parModel.Artifacts().Trust.Row(ratings.UserID(u), nil)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("T̂[%d][%d]: serial %v != parallel %v", u, j, a[j], b[j])
			}
		}
	}

	// Append one rated review and poll: ingest must fold it in through
	// the parallel incremental update.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	for _, ev := range []store.Event{
		{Kind: store.EvAddObject, Category: 0},
		{Kind: store.EvAddReview, User: 1, Object: ratings.ObjectID(d.NumObjects())},
		{Kind: store.EvAddRating, User: 2, Review: ratings.ReviewID(d.NumReviews()), Level: 4},
	} {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := parTailer.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ingested %d events, want 3", n)
	}
	model, _, version := parSrv.Current()
	if version != 2 {
		t.Fatalf("version = %d after ingest, want 2", version)
	}
	if model.Dataset().NumReviews() != d.NumReviews()+1 {
		t.Fatalf("served dataset has %d reviews, want %d", model.Dataset().NumReviews(), d.NumReviews()+1)
	}
}
