package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"weboftrust"
)

// DefaultLandmarks is the landmark-hub count when Options.Landmarks is 0.
// Sketches cost one full propagation per landmark per algorithm to build
// and O(L·U) memory to hold, so the default stays small; selection takes
// the top warm-rank hubs, which carry most propagation mass (Pavlovic),
// so returns diminish quickly beyond a handful.
const DefaultLandmarks = 16

// landmarkState is a state's landmark sketches: the L top-ranked hubs'
// full propagation vectors, one set per algorithm, backing the
// `?approx=landmark` serving mode. Like rankState and anomalyState, root
// states build lazily on first use — the L full traversals stay off the
// boot path — while parent-matched swaps eagerly refresh any sketch the
// predecessor had built, carrying every landmark vector the taint
// invariant proves unchanged (see Server.refreshLandmarks). The landmark
// selection re-derives from the new state's warm rank vector at every
// swap, so it — and therefore every served sketch — is a pure function
// of the swap history, byte-identical across replicas with the same
// cadence.
type landmarkState struct {
	// count is the configured landmark count; 0 disables the mode (the
	// `?approx=landmark` queries answer 400).
	count   int
	idsOnce sync.Once
	idsDone atomic.Bool
	idsFn   func() []int32
	ids     []int32
	// algos holds one lazily-or-eagerly built sketch per PropagationAlgo.
	algos [3]algoSketch
}

// algoSketch is one algorithm's sketch with the shared lazy/eager
// lifecycle: compute runs at most once; done lets peek observe without
// forcing.
type algoSketch struct {
	once    sync.Once
	done    atomic.Bool
	compute func() *weboftrust.LandmarkSketch
	sk      *weboftrust.LandmarkSketch
}

func (as *algoSketch) get() *weboftrust.LandmarkSketch {
	as.once.Do(func() {
		if as.compute != nil {
			as.sk = as.compute()
			as.compute = nil
		}
		as.done.Store(true)
	})
	return as.sk
}

// peek returns the sketch only if already built — swaps refresh built
// sketches but never force unbuilt ones, and the metrics scrape forces
// nothing.
func (as *algoSketch) peek() (*weboftrust.LandmarkSketch, bool) {
	if !as.done.Load() {
		return nil, false
	}
	return as.sk, true
}

// landmarkIDs returns the state's landmark selection, deriving it from
// the state's rank vector on first use.
func (ls *landmarkState) landmarkIDs() []int32 {
	ls.idsOnce.Do(func() {
		if ls.idsFn != nil {
			ls.ids = ls.idsFn()
			ls.idsFn = nil
		}
		ls.idsDone.Store(true)
	})
	return ls.ids
}

// peekIDs returns the selection only if something has already derived it.
func (ls *landmarkState) peekIDs() ([]int32, bool) {
	if !ls.idsDone.Load() {
		return nil, false
	}
	return ls.ids, true
}

// landmarkCount resolves Options.Landmarks: 0 means the default,
// negative disables.
func (s *Server) landmarkCount() int {
	if s.opts.Landmarks < 0 {
		return 0
	}
	if s.opts.Landmarks == 0 {
		return DefaultLandmarks
	}
	return s.opts.Landmarks
}

// lazyLandmarks builds the cold-path landmark state for st: the
// selection derives from st's rank vector on first use (forcing the
// cold rank solve if nobody has), and each algorithm's sketch builds on
// its first `?approx=landmark` query.
func (s *Server) lazyLandmarks(st *state) *landmarkState {
	ls := &landmarkState{count: s.landmarkCount()}
	if ls.count == 0 {
		return ls
	}
	model := st.model
	ls.idsFn = func() []int32 {
		vec, _ := st.rank.get()
		return weboftrust.SelectLandmarkIDs(vec, ls.count)
	}
	for a := range ls.algos {
		algo := weboftrust.PropagationAlgo(a)
		as := &ls.algos[a]
		as.compute = func() *weboftrust.LandmarkSketch {
			start := time.Now()
			sk, err := model.BuildLandmarkSketch(algo, ls.landmarkIDs())
			if err != nil {
				// The ids are range-checked by selection and the algo is
				// one of ours; an error is a broken invariant.
				panic(fmt.Sprintf("server: landmark sketch %v: %v", algo, err))
			}
			s.metrics.landmarkBuilds.Add(1)
			s.metrics.landmarkRefreshNanos.Add(time.Since(start).Nanoseconds())
			return sk
		}
	}
	return ls
}

// refreshLandmarks eagerly advances the predecessor's built sketches
// into st across a parent-matched swap, on the ingest goroutine: the
// selection re-derives from st's (already warm-refreshed) rank vector,
// untainted still-selected landmark vectors carry over by reference, and
// only the rest recompute. Sketches the predecessor never built stay
// lazy — a swap must not force traversals nobody asked for. A refresh
// failure just leaves that sketch lazy (the query path rebuilds cold).
func (s *Server) refreshLandmarks(st, prev *state, tainted []bool) {
	ls := st.landmarks
	if ls.count == 0 || prev.landmarks == nil {
		return
	}
	for a := range ls.algos {
		prevSk, ok := prev.landmarks.algos[a].peek()
		if !ok || prevSk == nil {
			continue
		}
		start := time.Now()
		sk, err := st.model.RefreshLandmarkSketch(prevSk, weboftrust.PropagationAlgo(a), ls.landmarkIDs(), tainted)
		if err != nil {
			continue
		}
		as := &ls.algos[a]
		as.sk = sk
		as.compute = nil
		as.once.Do(func() {})
		as.done.Store(true)
		s.metrics.landmarkRefreshes.Add(1)
		s.metrics.landmarkRefreshNanos.Add(time.Since(start).Nanoseconds())
	}
}
