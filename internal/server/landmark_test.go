package server

import (
	"strings"
	"testing"
	"time"

	"weboftrust"
	"weboftrust/internal/core"
)

func TestPropagateApproxParamValidation(t *testing.T) {
	srv, _, _ := openServer(t)
	h := srv.Handler()
	for _, url := range []string{
		"/v1/propagate?algo=appleseed&user=3&approx=bogus",
		"/v1/propagate?algo=appleseed&user=3&approx=landmark&exact=1",
	} {
		if rec := get(t, h, url); rec.Code != 400 {
			t.Errorf("%s: %d, want 400 (%s)", url, rec.Code, rec.Body.String())
		}
	}
	// A server with landmarks disabled rejects the mode outright.
	path, _ := writeLogFile(t)
	off, _, err := Open(path, time.Hour, Options{Landmarks: -1})
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, off.Handler(), "/v1/propagate?algo=appleseed&user=3&approx=landmark")
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), "disabled") {
		t.Errorf("disabled server: %d %s, want 400 disabled", rec.Code, rec.Body.String())
	}
}

// TestLandmarkApproxMatchesFacade pins the serving contract of
// `?approx=landmark`: the response is exactly the ranked head of the
// model facade's ComposeLandmarks over the state's own sketch, the body
// names the mode, and repeats are cache hits.
func TestLandmarkApproxMatchesFacade(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()
	model, _, _ := srv.Current()
	st := srv.cur.Load()
	for _, tc := range []struct {
		algoName string
		algo     weboftrust.PropagationAlgo
	}{
		{"appleseed", weboftrust.PropagateAppleseed},
		{"moletrust", weboftrust.PropagateMoleTrust},
		{"tidaltrust", weboftrust.PropagateTidalTrust},
	} {
		rec := get(t, h, "/v1/propagate?algo="+tc.algoName+"&user=3&k=8&approx=landmark")
		if rec.Code != 200 {
			t.Fatalf("%s: %d %s", tc.algoName, rec.Code, rec.Body.String())
		}
		resp := decode[PropagateResponse](t, rec)
		if resp.Approx != "landmark" {
			t.Errorf("%s: approx field %q, want landmark", tc.algoName, resp.Approx)
		}
		sk := st.landmarks.algos[tc.algo].get()
		dst := make([]float64, d.NumUsers())
		if err := model.ComposeLandmarks(sk, 3, dst); err != nil {
			t.Fatal(err)
		}
		want := core.RankRow(dst, 8)
		if len(resp.Results) != len(want) {
			t.Fatalf("%s: served %d results, facade %d", tc.algoName, len(resp.Results), len(want))
		}
		for i, rk := range want {
			if resp.Results[i].User != int(rk.User) || resp.Results[i].Score != rk.Score {
				t.Errorf("%s[%d] = %+v, want {%d %v}", tc.algoName, i, resp.Results[i], rk.User, rk.Score)
			}
		}
	}
	// The landmark selection is the deterministic rule over the state's
	// rank vector.
	vec, _ := st.rank.get()
	want := weboftrust.SelectLandmarkIDs(vec, DefaultLandmarks)
	got := st.landmarks.landmarkIDs()
	if len(got) != len(want) {
		t.Fatalf("selection %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selection %v, want %v", got, want)
		}
	}
	// Repeats of a landmark query hit the cache, not the composition.
	before := srv.metrics.propagateComputes.Load()
	if rec := get(t, h, "/v1/propagate?algo=appleseed&user=3&k=8&approx=landmark"); rec.Code != 200 {
		t.Fatal("repeat failed")
	}
	if got := srv.metrics.propagateComputes.Load(); got != before {
		t.Errorf("repeat landmark query recomputed: %d -> %d", before, got)
	}
}

// TestLandmarkRefreshAcrossSwap pins the sketch lifecycle: a sketch the
// predecessor built is eagerly refreshed at an incremental swap (no
// query-path rebuild), sketches nobody asked for stay lazy, cached
// landmark answers are dropped, and the refreshed sketch serves exactly
// what a fresh facade composition over the new model produces.
func TestLandmarkRefreshAcrossSwap(t *testing.T) {
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	const url = "/v1/propagate?algo=appleseed&user=3&k=8&approx=landmark"
	if rec := get(t, h, url); rec.Code != 200 {
		t.Fatalf("cold landmark query: %d %s", rec.Code, rec.Body.String())
	}
	if got := srv.metrics.landmarkBuilds.Load(); got != 1 {
		t.Fatalf("landmark builds = %d, want 1", got)
	}

	appendEvents(t, path, taintBatch(d, 0))
	if n, err := tailer.Poll(); err != nil || n == 0 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	if got := srv.metrics.landmarkRefreshes.Load(); got != 1 {
		t.Fatalf("landmark refreshes = %d, want 1 (appleseed was built)", got)
	}
	st := srv.cur.Load()
	if _, ok := st.landmarks.algos[weboftrust.PropagateAppleseed].peek(); !ok {
		t.Fatal("refreshed appleseed sketch not installed eagerly")
	}
	for _, algo := range []weboftrust.PropagationAlgo{weboftrust.PropagateMoleTrust, weboftrust.PropagateTidalTrust} {
		if _, ok := st.landmarks.algos[algo].peek(); ok {
			t.Errorf("swap force-built the %v sketch nobody queried", algo)
		}
	}
	// Landmark cache entries never carry across a swap: the selection
	// moved with the rank vector, so the post-swap query recomputes the
	// composition (one compute, not a traversalful).
	numU := srv.cur.Load().model.Dataset().NumUsers()
	if _, _, ok := st.results.get(resultKey{kind: kindAppleseedLandmark, user: 3, k: cacheK(8, numU)}); ok {
		t.Error("landmark cache entry survived the swap")
	}
	builds := srv.metrics.landmarkBuilds.Load()
	rec := get(t, h, url)
	if rec.Code != 200 {
		t.Fatalf("post-swap landmark query: %d %s", rec.Code, rec.Body.String())
	}
	if got := srv.metrics.landmarkBuilds.Load(); got != builds {
		t.Errorf("post-swap query rebuilt the sketch: builds %d -> %d", builds, got)
	}
	resp := decode[PropagateResponse](t, rec)
	newModel, _, _ := srv.Current()
	sk := st.landmarks.algos[weboftrust.PropagateAppleseed].get()
	dst := make([]float64, numU)
	if err := newModel.ComposeLandmarks(sk, 3, dst); err != nil {
		t.Fatal(err)
	}
	want := core.RankRow(dst, 8)
	for i, rk := range want {
		if resp.Results[i].User != int(rk.User) || resp.Results[i].Score != rk.Score {
			t.Errorf("post-swap[%d] = %+v, want {%d %v}", i, resp.Results[i], rk.User, rk.Score)
		}
	}
	// The refreshed sketch agrees with a from-scratch build on the new
	// model under the new selection — the taint carry changed nothing.
	fresh, err := newModel.BuildLandmarkSketch(weboftrust.PropagateAppleseed, st.landmarks.landmarkIDs())
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.Landmarks() {
		fv, rv := fresh.Vector(i), sk.Vector(i)
		if len(fv) != len(rv) {
			t.Fatalf("landmark %d: refreshed len %d, fresh len %d", i, len(rv), len(fv))
		}
		for v := range fv {
			if fv[v] != rv[v] {
				t.Fatalf("landmark %d vec[%d]: refreshed %v, fresh %v — carry broke bitwise identity",
					i, v, rv[v], fv[v])
			}
		}
	}

	// Metrics: the gauge reports the derived selection size.
	body := get(t, h, "/metrics").Body.String()
	for _, name := range []string{
		"trustd_landmark_builds_total",
		"trustd_landmark_refreshes_total",
		"trustd_landmark_refresh_seconds",
		"trustd_landmark_count",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	stats := decode[StatsResponse](t, get(t, h, "/v1/stats"))
	if stats.Precompute == nil || stats.Precompute.Landmarks == 0 {
		t.Errorf("stats landmark block = %+v", stats.Precompute)
	}
}
