package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"weboftrust"
	"weboftrust/internal/core"
	"weboftrust/internal/graph"
	"weboftrust/internal/ratings"
)

// rankRefreshIters is the power-iteration budget a parent-matched swap
// spends refreshing the global EigenTrust vector from its predecessor.
// One ingest tick shifts the fixed point by a small s (the dirty rows are
// a sliver of the graph), and power iteration contracts L1 error by
// rho = (1 - alpha) per step, so a B-iteration refresh leaves steady-state
// drift bounded by s·rho^B/(1 - rho^B) — at B = 3 about 3% of the
// per-tick shift, invisible at ranking granularity — while costing ~3
// iterations per swap where a cold solve pays dozens. The chain is
// deterministic given the swap history, so every replica of a cluster
// (same log, same swaps) serves byte-identical rank vectors.
const rankRefreshIters = 3

// rankState is a state's global EigenTrust vector. Root states (boot,
// restore, non-incremental swaps) compute lazily on first use — keeping
// the cold solve off the boot path preserves the warm-restart win —
// while parent-matched swaps install an eagerly refreshed vector (see
// Server.newState). vec and iters are immutable once done reports true.
type rankState struct {
	once    sync.Once
	done    atomic.Bool
	compute func() ([]float64, int)
	vec     []float64
	iters   int
}

// lazyRank defers the cold converged solve until the first /v1/rank (or
// metrics peek never forces it).
func lazyRank(model *weboftrust.TrustModel) *rankState {
	return &rankState{compute: func() ([]float64, int) {
		vec, iters, err := model.GlobalRanks()
		if err != nil {
			// DefaultEigenTrust is statically valid and the graph is the
			// model's own; an error here is a broken invariant.
			panic(fmt.Sprintf("server: global ranks: %v", err))
		}
		return vec, iters
	}}
}

// eagerRank wraps an already-computed vector (the warm-refresh path).
func eagerRank(vec []float64, iters int) *rankState {
	r := &rankState{vec: vec, iters: iters}
	r.done.Store(true)
	return r
}

// get returns the vector and the iterations spent producing it, computing
// once on first use. Concurrent callers coalesce on the sync.Once.
func (r *rankState) get() ([]float64, int) {
	r.once.Do(func() {
		if r.compute != nil {
			r.vec, r.iters = r.compute()
			r.compute = nil
		}
		r.done.Store(true)
	})
	return r.vec, r.iters
}

// peek returns the vector only if it has already been computed — the
// metrics scrape must never force a solve.
func (r *rankState) peek() ([]float64, int, bool) {
	if !r.done.Load() {
		return nil, 0, false
	}
	return r.vec, r.iters, true
}

// taintedUsers marks every user whose propagation result may have changed
// across an incremental swap: a source's multi-hop view depends only on
// the rows of nodes it can reach, so a result is stale only if the source
// reaches a dirty row. Reverse BFS over the predecessor graph's in-edges
// from the dirty seeds marks exactly the sources that can; everyone else
// provably reaches only unchanged rows (the pruned companion's edges are
// a subset of the full graph's, so the full-graph taint is conservative
// for pruned traversals too).
func taintedUsers(g *graph.Graph, dirty []bool) []bool {
	n := g.NumNodes()
	tainted := make([]bool, n)
	queue := make([]int32, 0, 64)
	for u := 0; u < n && u < len(dirty); u++ {
		if dirty[u] {
			tainted[u] = true
			queue = append(queue, int32(u))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		from, _ := g.In(int(v))
		for _, u := range from {
			if !tainted[u] {
				tainted[u] = true
				queue = append(queue, u)
			}
		}
	}
	return tainted
}

// migrateCache carries result-cache entries whose answers provably cannot
// have changed from the predecessor state into the fresh one. A top-k
// entry survives when its source row is clean (non-dirty rows are shared
// with the parent by reference, and new users only ever append
// zero-valued cells a ranking truncates anyway); a traversal-computed
// propagate entry survives when its source is untainted under the
// caller-supplied taint set (taintedUsers over the predecessor graph; nil
// when that graph was never built, dropping them all). Entries are
// re-inserted oldest-first so the new cache preserves the old recency
// order, and the migrated slices are shared — both caches treat entries
// as immutable.
func (s *Server) migrateCache(st, prev *state, dirty, tainted []bool) {
	entries := prev.results.snapshot()
	if len(entries) == 0 {
		return
	}
	kept := 0
	for _, e := range entries {
		u := int(e.key.user)
		var keep bool
		switch {
		case e.key.kind == kindTopK:
			keep = u < len(dirty) && !dirty[u]
		case e.key.kind == kindAnomalyTop:
			// Anomaly scores move with any delta (new ratings shift category
			// means community-wide); the leaderboard is recut from the eagerly
			// refreshed vector on the next query instead of proven stable.
			keep = false
		case e.key.kind >= kindAppleseedLandmark:
			// Landmark answers depend on the landmark SELECTION (which moves
			// with the rank vector every swap), not just the source's
			// neighborhood, so no taint argument proves them stable; the
			// composition is cheap enough to recompute on the next query.
			keep = false
		default:
			keep = tainted != nil && u < len(tainted) && !tainted[u]
		}
		if keep {
			st.results.put(e.key, e.ranked)
			kept++
		}
	}
	s.metrics.cacheCarryover.Add(int64(kept))
	s.metrics.cacheCarryoverDropped.Add(int64(len(entries) - kept))
}

// RankEntry is one /v1/rank leaderboard row.
type RankEntry struct {
	Rank  int     `json:"rank"`
	User  int     `json:"user"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// RankResponse is the /v1/rank leaderboard body: the k globally
// highest-ranked users under EigenTrust over the served web of trust.
type RankResponse struct {
	K          int         `json:"k"`
	Version    uint64      `json:"version"`
	Users      int         `json:"users"`
	Iterations int         `json:"iterations"`
	Results    []RankEntry `json:"results"`
}

// RankUserResponse is the /v1/rank?user= body: one user's global rank
// (1-based; ties broken by ascending user id) and EigenTrust score.
type RankUserResponse struct {
	User       int     `json:"user"`
	Name       string  `json:"name"`
	Version    uint64  `json:"version"`
	Users      int     `json:"users"`
	Rank       int     `json:"rank"`
	Score      float64 `json:"score"`
	Iterations int     `json:"iterations"`
}

// handleRank serves the global EigenTrust ranking. The vector is global,
// replicated state — every shard computes it over the same complete
// graph through the same deterministic warm chain — so any replica can
// answer for any user; there is no ownership check.
func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests[epRank].Add(1)
	st, ok := s.loadState(w)
	if !ok {
		return
	}
	vec, iters := st.rank.get()
	if raw := r.URL.Query().Get("user"); raw != "" {
		u, ok := s.userParam(w, r, st, "user")
		if !ok {
			return
		}
		score := vec[u]
		rank := 1
		for j, v := range vec {
			if v > score || (v == score && ratings.UserID(j) < u) {
				rank++
			}
		}
		d := st.model.Dataset()
		writeJSON(w, http.StatusOK, RankUserResponse{
			User: int(u), Name: d.UserName(u), Version: st.version,
			Users: len(vec), Rank: rank, Score: score, Iterations: iters,
		})
		return
	}
	k, ok := s.kParam(w, r)
	if !ok {
		return
	}
	ranked := core.RankRow(vec, k)
	d := st.model.Dataset()
	results := make([]RankEntry, len(ranked))
	for i, rk := range ranked {
		results[i] = RankEntry{Rank: i + 1, User: int(rk.User), Name: d.UserName(rk.User), Score: rk.Score}
	}
	writeJSON(w, http.StatusOK, RankResponse{
		K: k, Version: st.version, Users: len(vec), Iterations: iters, Results: results,
	})
}
