package server

import (
	"context"
	"os"
	"time"

	"weboftrust/internal/checkpoint"
)

// DefaultCheckpointInterval is the periodic checkpoint cadence when none
// is given.
const DefaultCheckpointInterval = 5 * time.Minute

// DefaultCheckpointKeep is how many recent checkpoints a Checkpointer
// retains: the newest plus one fallback, so a torn newest (crash exactly
// at publish, disk corruption) still leaves a warm boot.
const DefaultCheckpointKeep = 2

// CheckpointStatus is the most recent durable state of the served model,
// surfaced through /v1/stats and /metrics so operators can alarm on a
// checkpointer that has stopped making progress.
type CheckpointStatus struct {
	// Path is the newest checkpoint file.
	Path string
	// Offset is the event-log offset that checkpoint reflects.
	Offset int64
	// SizeBytes is the checkpoint file's size.
	SizeBytes int64
	// WrittenAt is when it was published.
	WrittenAt time.Time
}

// Checkpointer periodically persists the server's current model so the
// next boot restores in milliseconds instead of replaying the log (see
// package checkpoint). It writes on an interval — skipping ticks where
// ingest made no progress — and once more on shutdown, so the final
// checkpoint reflects everything the daemon ingested. One Checkpointer
// per server; it is driven by a single goroutine (Run's).
type Checkpointer struct {
	srv      *Server
	dir      string
	interval time.Duration
	keep     int
}

// NewCheckpointer wires a Checkpointer to a server. interval <= 0 uses
// DefaultCheckpointInterval; keep <= 0 uses DefaultCheckpointKeep.
func NewCheckpointer(srv *Server, dir string, interval time.Duration, keep int) *Checkpointer {
	if interval <= 0 {
		interval = DefaultCheckpointInterval
	}
	if keep <= 0 {
		keep = DefaultCheckpointKeep
	}
	return &Checkpointer{srv: srv, dir: dir, interval: interval, keep: keep}
}

// WriteNow checkpoints the currently served model if it is ahead of the
// last checkpoint, returning the path written and whether a write
// happened (false means the model was already durable). Failures are
// counted in the server's metrics and returned.
func (c *Checkpointer) WriteNow() (string, bool, error) {
	model, offset, _ := c.srv.Current()
	if last := c.srv.checkpointStatus(); last != nil && last.Offset == offset {
		return last.Path, false, nil
	}
	path, err := checkpoint.WriteDir(c.dir, model, offset, offset)
	if err != nil {
		c.srv.metrics.checkpointErrors.Add(1)
		return "", false, err
	}
	size := int64(0)
	if st, err := os.Stat(path); err == nil {
		size = st.Size()
	}
	c.srv.setCheckpointStatus(&CheckpointStatus{
		Path:      path,
		Offset:    offset,
		SizeBytes: size,
		WrittenAt: time.Now(),
	})
	c.srv.metrics.checkpointWrites.Add(1)
	if err := checkpoint.Prune(c.dir, c.keep); err != nil {
		// The new checkpoint is safely published; failing to clean old
		// ones is worth counting but not failing over.
		c.srv.metrics.checkpointErrors.Add(1)
	}
	return path, true, nil
}

// Run writes checkpoints on the configured interval until ctx is
// cancelled, then writes a final checkpoint (the SIGTERM flush: process
// death must not cost the events ingested since the last tick) and
// returns ctx's error. Write failures are recorded in metrics and do not
// stop the loop — an out-of-disk window shouldn't kill a healthy server —
// but the last error is returned alongside ctx's if the final flush also
// fails.
func (c *Checkpointer) Run(ctx context.Context) error {
	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			if _, _, err := c.WriteNow(); err != nil {
				return err
			}
			return ctx.Err()
		case <-ticker.C:
			_, _, _ = c.WriteNow()
		}
	}
}
