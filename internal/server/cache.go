package server

import (
	"container/list"
	"sync"

	"weboftrust/internal/core"
	"weboftrust/internal/ratings"
)

// resultKind distinguishes the ranked-result families sharing the cache:
// the one-hop top-k ranking and one entry per propagation algorithm. One
// LRU serves them all, so the byte budget bounds the sum and a state swap
// invalidates every family at once.
type resultKind uint8

const (
	kindTopK resultKind = iota
	kindAppleseed
	kindMoleTrust
	kindTidalTrust
	// The exact-mode propagate kinds answer ?exact=1: the same algorithms
	// forced over the complete graph when the server prunes (without
	// pruning they compute the same values as their plain kinds, cached
	// separately). Keep them contiguous and in the same algorithm order.
	kindAppleseedExact
	kindMoleTrustExact
	kindTidalTrustExact
	// kindAnomalyTop is the /v1/anomaly/top leaderboard (always user 0:
	// the suspicion vector is global, not per-source). It must stay after
	// the exact propagate kinds — propagateAlgo's arithmetic never sees it
	// because fillScore handles it explicitly.
	kindAnomalyTop
	// The landmark propagate kinds answer ?approx=landmark: the O(L·U)
	// sketch composition instead of a traversal. Keep them contiguous and
	// in the same algorithm order; like kindAnomalyTop they are handled
	// explicitly by fillScore, never by propagateAlgo's arithmetic, and
	// migrateCache always drops them (the landmark selection itself moves
	// with the rank vector, so no taint argument proves them stable).
	kindAppleseedLandmark
	kindMoleTrustLandmark
	kindTidalTrustLandmark
)

// isPropagateKind reports whether the kind is a propagation family —
// pruned, exact or landmark — the families heat tracking and swap-time
// precompute apply to.
func isPropagateKind(k resultKind) bool {
	return (k >= kindAppleseed && k <= kindTidalTrustExact) ||
		(k >= kindAppleseedLandmark && k <= kindTidalTrustLandmark)
}

// resultKey identifies one ranked answer: the result family, the source
// user and the k it was ranked at.
type resultKey struct {
	kind resultKind
	user ratings.UserID
	k    int
}

// resultCache is a bounded LRU of ranked top-k results keyed by
// (user, k). Where the previous dense-row cache retained 8·U bytes per
// entry (8 MB per cached user at the million-user north star), a ranked
// result retains k (user, score) pairs — tens of bytes — so per-cached-
// user memory is O(k), not O(U). Entries are treated as immutable once
// inserted (readers only read, so one result may serve many concurrent
// requests). Each server state owns its own cache, so an artifact swap
// invalidates every entry wholesale — there is no per-entry invalidation
// to get wrong.
type resultCache struct {
	mu       sync.Mutex
	cap      int        // max entries
	maxBytes int64      // byte budget; <= 0 means entry-count bound only
	bytes    int64      // approximate retained bytes across all entries
	ll       *list.List // front = most recently used
	m        map[resultKey]*list.Element
}

type resultEntry struct {
	key    resultKey
	ranked []core.Ranked
	// prewarmed marks an entry inserted by the swap-time precompute
	// engine rather than a served miss; the first hit on one is a query
	// that skipped a traversal it would otherwise have paid.
	prewarmed bool
}

// rankedSize is the in-memory size of one core.Ranked (a 4-byte UserID
// padded beside a float64 score).
const rankedSize = 16

// entryOverhead approximates the fixed bookkeeping bytes per cache entry:
// the entry struct and slice header, its list.Element, and a share of the
// map bucket.
const entryOverhead = 96

func entryBytes(ranked []core.Ranked) int64 {
	return entryOverhead + rankedSize*int64(cap(ranked))
}

func newResultCache(capacity int, maxBytes int64) *resultCache {
	return &resultCache{
		cap:      capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		m:        make(map[resultKey]*list.Element, min(capacity, 1024)),
	}
}

// get returns the cached ranked result for key, marking it most recently
// used. prewarmed reports that this hit is the FIRST on an entry the
// swap-time precompute engine inserted — a traversal the query skipped —
// and is consumed: later hits on the same entry are ordinary cache hits.
func (c *resultCache) get(key resultKey) (ranked []core.Ranked, prewarmed, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.m[key]
	if !found {
		return nil, false, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*resultEntry)
	prewarmed = e.prewarmed
	e.prewarmed = false
	return e.ranked, prewarmed, true
}

// put inserts a ranked result for key, evicting least recently used
// entries while the cache is over its entry or byte bound. The byte
// budget keeps large-k answers (which legitimately retain O(k) = up to
// O(U) pairs each) from silently holding cap × U memory — the blowup
// the result cache exists to remove. The caller must not modify ranked
// afterwards.
func (c *resultCache) put(key resultKey, ranked []core.Ranked) {
	c.insert(key, ranked, false)
}

// putPrewarmed is put for the swap-time precompute engine: the entry is
// marked so its first hit can be attributed to pre-warming.
func (c *resultCache) putPrewarmed(key resultKey, ranked []core.Ranked) {
	c.insert(key, ranked, true)
}

func (c *resultCache) insert(key resultKey, ranked []core.Ranked, prewarmed bool) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*resultEntry)
		c.bytes += entryBytes(ranked) - entryBytes(e.ranked)
		e.ranked = ranked
		e.prewarmed = prewarmed
		c.evictOver(el)
		return
	}
	el := c.ll.PushFront(&resultEntry{key: key, ranked: ranked, prewarmed: prewarmed})
	c.m[key] = el
	c.bytes += entryBytes(ranked)
	c.evictOver(el)
}

// evictOver drops LRU entries while either bound is exceeded, never
// evicting keep (the entry just touched — one oversized answer is still
// worth caching once). Callers hold c.mu.
func (c *resultCache) evictOver(keep *list.Element) {
	for c.ll.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.ll.Back()
		if oldest == nil || oldest == keep {
			return
		}
		c.ll.Remove(oldest)
		e := oldest.Value.(*resultEntry)
		delete(c.m, e.key)
		c.bytes -= entryBytes(e.ranked)
	}
}

// snapshot returns the cache's entries from least to most recently used.
// Entries are shared (immutable once inserted); the caller may re-insert
// them into another cache in this order to preserve recency.
func (c *resultCache) snapshot() []resultEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]resultEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*resultEntry))
	}
	return out
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// approxBytes returns the approximate memory retained by the cache.
func (c *resultCache) approxBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// queryScratch is the per-request working memory a cache miss needs: a
// row-length buffer for the eq. 5 evaluation and a small index scratch
// for the heap selection. It is pooled so steady-state misses allocate
// neither.
type queryScratch struct {
	row []float64
	idx []int
}

// idxScratchCap is the heap-index capacity a pooled scratch starts with;
// requests with k beyond it fall back to a per-call allocation.
const idxScratchCap = 64

// rowPool recycles queryScratch buffers for cache-miss row evaluation.
// Buffers are handed out dirty (RowAuto overwrites every row cell). The
// pool is sized to one state's user count and owned by that state, so a
// swap retires stale-length buffers with the state it belongs to.
type rowPool struct{ p sync.Pool }

func newRowPool(numU int) *rowPool {
	rp := &rowPool{}
	rp.p.New = func() any {
		return &queryScratch{
			row: make([]float64, numU),
			idx: make([]int, 0, idxScratchCap),
		}
	}
	return rp
}

func (rp *rowPool) get() *queryScratch  { return rp.p.Get().(*queryScratch) }
func (rp *rowPool) put(s *queryScratch) { rp.p.Put(s) }
