package server

import (
	"container/list"
	"sync"

	"weboftrust/internal/ratings"
)

// rowCache is a bounded LRU of derived-trust rows keyed by source user.
// Rows are stored with the self-trust cell already zeroed, ready for
// ranking, and are treated as immutable once inserted (readers only read,
// so one row may serve many concurrent requests). Each server state owns
// its own cache, so an artifact swap invalidates every entry wholesale —
// there is no per-row invalidation to get wrong.
type rowCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[ratings.UserID]*list.Element
}

type cacheEntry struct {
	user ratings.UserID
	row  []float64
}

func newRowCache(capacity int) *rowCache {
	return &rowCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[ratings.UserID]*list.Element, capacity),
	}
}

// get returns the cached row for u, marking it most recently used.
func (c *rowCache) get(u ratings.UserID) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[u]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).row, true
}

// put inserts a row for u, evicting the least recently used entry when
// the cache is full. The caller must not modify row afterwards.
func (c *rowCache) put(u ratings.UserID, row []float64) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[u]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).row = row
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).user)
	}
	c.m[u] = c.ll.PushFront(&cacheEntry{user: u, row: row})
}

// len returns the number of cached rows.
func (c *rowCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
