package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"weboftrust"
	"weboftrust/internal/core"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
)

func TestHeatTrackerFoldAndPrune(t *testing.T) {
	h := newHeatTracker()
	a := heatKey{kind: kindAppleseed, user: 3, k: 10}
	b := heatKey{kind: kindMoleTrust, user: 7, k: 10}
	h.record(a)
	h.record(a)
	h.record(b)
	h.fold()
	hot := h.hot()
	if len(hot) != 2 || hot[0].key != a || hot[0].heat != 1.0 || hot[1].heat != 0.5 {
		t.Fatalf("after first fold: %+v", hot)
	}
	// A quiet swap halves heat; b (0.25) sits exactly at the floor and
	// survives, one more quiet swap prunes it.
	h.fold()
	hot = h.hot()
	if len(hot) != 2 || hot[0].heat != 0.5 || hot[1].heat != 0.25 {
		t.Fatalf("after quiet fold: %+v", hot)
	}
	h.fold()
	hot = h.hot()
	if len(hot) != 1 || hot[0].key != a || hot[0].heat != 0.25 {
		t.Fatalf("after second quiet fold: %+v", hot)
	}
	h.fold()
	if hot = h.hot(); len(hot) != 0 {
		t.Fatalf("tracker did not drain: %+v", hot)
	}
}

func TestHeatTrackerDeterministicOrderAndCap(t *testing.T) {
	h := newHeatTracker()
	// Equal heat everywhere: order must fall back to key fields.
	for u := 9; u >= 0; u-- {
		h.record(heatKey{kind: kindTidalTrust, user: ratings.UserID(u), k: 10})
		h.record(heatKey{kind: kindAppleseed, user: ratings.UserID(u), k: 10})
	}
	h.fold()
	hot := h.hot()
	if len(hot) != 20 {
		t.Fatalf("got %d entries", len(hot))
	}
	for i, e := range hot {
		wantKind, wantUser := kindAppleseed, ratings.UserID(i)
		if i >= 10 {
			wantKind, wantUser = kindTidalTrust, ratings.UserID(i-10)
		}
		if e.key.kind != wantKind || e.key.user != wantUser {
			t.Fatalf("hot[%d] = %+v, want kind %d user %d", i, e.key, wantKind, wantUser)
		}
	}
	// Over the cap, only the hottest heatMaxKeys keys survive a fold.
	for u := 0; u < heatMaxKeys+100; u++ {
		h.record(heatKey{kind: kindAppleseed, user: ratings.UserID(u), k: 10})
	}
	h.fold()
	if got := len(h.hot()); got != heatMaxKeys {
		t.Fatalf("tracker holds %d keys, cap %d", got, heatMaxKeys)
	}
}

// taintBatch grows the log like growBatch and additionally adds a trust
// edge between two long-existing users, guaranteeing the dirty set —
// and therefore the taint set — reaches into the original community.
func taintBatch(d *ratings.Dataset, i int) []store.Event {
	return append(growBatch(d, i), store.Event{Kind: store.EvAddTrust, User: 2, To: 9})
}

// TestPrewarmMatchesColdCompute is the precompute engine's bitwise pin:
// after an incremental swap with a precompute budget, every hot tainted
// owned source has a pre-warmed cache entry whose ranked result is
// identical — user for user, score bit for score bit — to computing the
// same request cold against the new model. Runs across shard counts
// {1, 3} and worker counts {1, 4}, since both shard ownership and the
// parallel derive must not perturb the served bytes.
func TestPrewarmMatchesColdCompute(t *testing.T) {
	for _, shards := range []int{1, 3} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				testPrewarmBitwise(t, shards, workers)
			})
		}
	}
}

func testPrewarmBitwise(t *testing.T, shards, workers int) {
	path, d := writeLogFile(t)
	derive := []weboftrust.Option{weboftrust.WithWorkers(workers)}
	if shards > 1 {
		derive = append(derive, weboftrust.WithShard(0, shards))
	}
	srv, tailer, err := Open(path, time.Hour, Options{PrecomputeBudget: time.Minute}, derive...)
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	model, _, _ := srv.Current()

	// Heat every owned source under appleseed, every fifth under the
	// other two algorithms.
	type hotQ struct {
		kind resultKind
		algo string
		u    int
	}
	var hot []hotQ
	for u := 0; u < d.NumUsers(); u++ {
		if !model.Owns(ratings.UserID(u)) {
			continue
		}
		hot = append(hot, hotQ{kindAppleseed, "appleseed", u})
		if u%5 == 0 {
			hot = append(hot, hotQ{kindMoleTrust, "moletrust", u}, hotQ{kindTidalTrust, "tidaltrust", u})
		}
	}
	for _, q := range hot {
		if rec := get(t, h, "/v1/propagate?algo="+q.algo+"&user="+itoa(q.u)+"&k=5"); rec.Code != 200 {
			t.Fatalf("heat %s(%d): %d %s", q.algo, q.u, rec.Code, rec.Body.String())
		}
	}

	prevModel := srv.cur.Load().model
	appendEvents(t, path, taintBatch(d, 0))
	if n, err := tailer.Poll(); err != nil || n == 0 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	if srv.metrics.precomputeRuns.Load() == 0 {
		t.Fatal("precompute never ran at the incremental swap")
	}
	if srv.metrics.precomputeVectors.Load() == 0 {
		t.Fatal("precompute warmed no vectors")
	}

	newModel, _, _ := srv.Current()
	tainted := taintedUsers(prevModel.WebOfTrust().Graph(), newModel.DirtyUsers())
	st := srv.cur.Load()
	numU := newModel.Dataset().NumUsers()
	kc := cacheK(5, numU)
	checked := 0
	vec := make([]float64, numU)
	for _, q := range hot {
		if !tainted[q.u] {
			continue
		}
		ranked, prewarmed, ok := st.results.get(resultKey{kind: q.kind, user: ratings.UserID(q.u), k: kc})
		if !ok {
			t.Fatalf("hot tainted %s(%d) has no cache entry after precompute", q.algo, q.u)
		}
		if !prewarmed {
			t.Errorf("hot tainted %s(%d) entry not marked pre-warmed", q.algo, q.u)
		}
		// Cold compute: the same path a served miss takes.
		if err := newModel.PropagateInto(weboftrust.PropagationAlgo(q.kind-kindAppleseed), ratings.UserID(q.u), vec); err != nil {
			t.Fatal(err)
		}
		want := core.RankRow(vec, kc)
		if len(ranked) != len(want) {
			t.Fatalf("%s(%d): prewarmed %d entries, cold %d", q.algo, q.u, len(ranked), len(want))
		}
		for i := range want {
			if ranked[i].User != want[i].User || ranked[i].Score != want[i].Score {
				t.Fatalf("%s(%d)[%d]: prewarmed {%d %v}, cold {%d %v} — not bitwise-identical",
					q.algo, q.u, i, ranked[i].User, ranked[i].Score, want[i].User, want[i].Score)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no hot source was tainted; the test exercised nothing")
	}
}

// TestPrewarmServesWithoutTraversal pins the serving-side payoff: after
// the swap, the first query for a pre-warmed hot tainted source is a
// cache hit (no propagation traversal), counted by the prewarm-hit
// metric, and still answers exactly what a fresh propagation on the new
// model would.
func TestPrewarmServesWithoutTraversal(t *testing.T) {
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{PrecomputeBudget: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	const url = "/v1/propagate?algo=appleseed&user=2&k=5"
	if rec := get(t, h, url); rec.Code != 200 {
		t.Fatalf("heat query: %d", rec.Code)
	}
	// taintBatch dirties user 2 directly, so its entry cannot carry over.
	appendEvents(t, path, taintBatch(d, 0))
	if n, err := tailer.Poll(); err != nil || n == 0 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	computes := srv.metrics.propagateComputes.Load()
	hits := srv.metrics.prewarmHits.Load()
	rec := get(t, h, url)
	if rec.Code != 200 {
		t.Fatalf("post-swap query: %d %s", rec.Code, rec.Body.String())
	}
	if got := srv.metrics.propagateComputes.Load(); got != computes {
		t.Errorf("post-swap query paid a traversal: computes %d -> %d", computes, got)
	}
	if got := srv.metrics.prewarmHits.Load(); got != hits+1 {
		t.Errorf("prewarm hits = %d, want %d", got, hits+1)
	}
	newModel, _, _ := srv.Current()
	resp := decode[PropagateResponse](t, rec)
	want, err := newModel.Propagate(weboftrust.PropagateAppleseed, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(want) {
		t.Fatalf("served %d results, fresh propagation %d", len(resp.Results), len(want))
	}
	for i, rk := range want {
		if resp.Results[i].User != int(rk.User) || resp.Results[i].Score != rk.Score {
			t.Errorf("served[%d] = %+v, want {%d %v}", i, resp.Results[i], rk.User, rk.Score)
		}
	}
	// The second hit on the same entry is an ordinary cache hit.
	if rec := get(t, h, url); rec.Code != 200 {
		t.Fatal("repeat query failed")
	}
	if got := srv.metrics.prewarmHits.Load(); got != hits+1 {
		t.Errorf("prewarm hit double-counted: %d", got)
	}

	// Stats surface the engine's counters.
	stats := decode[StatsResponse](t, get(t, h, "/v1/stats"))
	if stats.Precompute == nil {
		t.Fatal("stats omit the precompute block with a budget configured")
	}
	if stats.Precompute.Runs == 0 || stats.Precompute.Vectors == 0 || stats.Precompute.PrewarmHits != 1 {
		t.Errorf("precompute stats = %+v", stats.Precompute)
	}
	body := get(t, h, "/metrics").Body.String()
	for _, name := range []string{
		"trustd_propagate_precompute_runs_total",
		"trustd_propagate_precompute_vectors_total",
		"trustd_propagate_precompute_budget_exhausted_total",
		"trustd_result_cache_prewarm_hits_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// TestPrecomputeBudgetExhaustion pins the budget contract: a swap whose
// budget is already spent computes nothing and counts the exhaustion,
// and a server with no budget never runs the engine at all.
func TestPrecomputeBudgetExhaustion(t *testing.T) {
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{PrecomputeBudget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	if rec := get(t, h, "/v1/propagate?algo=appleseed&user=2&k=5"); rec.Code != 200 {
		t.Fatalf("heat query: %d", rec.Code)
	}
	appendEvents(t, path, taintBatch(d, 0))
	if n, err := tailer.Poll(); err != nil || n == 0 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	if got := srv.metrics.precomputeRuns.Load(); got != 1 {
		t.Errorf("precompute runs = %d, want 1", got)
	}
	if got := srv.metrics.precomputeVectors.Load(); got != 0 {
		t.Errorf("a nanosecond budget warmed %d vectors", got)
	}
	if got := srv.metrics.precomputeBudgetExhausted.Load(); got != 1 {
		t.Errorf("budget exhausted = %d, want 1", got)
	}

	path2, d2 := writeLogFile(t)
	srv2, tailer2, err := Open(path2, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec := get(t, srv2.Handler(), "/v1/propagate?algo=appleseed&user=2&k=5"); rec.Code != 200 {
		t.Fatalf("heat query: %d", rec.Code)
	}
	appendEvents(t, path2, taintBatch(d2, 0))
	if n, err := tailer2.Poll(); err != nil || n == 0 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	if got := srv2.metrics.precomputeRuns.Load(); got != 0 {
		t.Errorf("engine ran %d times with no budget configured", got)
	}
}
