package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
)

// Tailer keeps a Server fresh against an append-only event log. It owns a
// long-lived ratings.Builder holding exactly the entities the served model
// reflects; each poll replays the records past its checkpoint into the
// builder, snapshots the grown dataset, rebuilds artifacts incrementally
// with TrustModel.Update (only categories touched by the new events are
// re-solved, the rest of the model is reused, and the recompute fans out
// across the Workers the model was derived with — see
// weboftrust.WithWorkers), and swaps the result into the server. Because
// Update chains the model's scratch buffers, steady-state ingest ticks
// reuse the Riggs iteration buffers instead of reallocating them. A torn
// final record —
// a writer crashed or is still mid-append — is not an error: the tailer
// ingests the intact prefix and retries the tail on the next poll.
type Tailer struct {
	srv     *Server
	path    string
	poll    time.Duration
	builder *ratings.Builder
	// base lazily materialises the builder on the first poll that finds
	// events: a warm boot whose log tail was empty hands the tailer just
	// the restored dataset, deferring the dedup-map reconstruction
	// (NewBuilderFrom) off the time-to-serving path and onto the first
	// ingest tick. Exactly one of builder/base is set at construction.
	base   *ratings.Dataset
	offset int64
	// failed poisons the tailer once the builder may have diverged from
	// the offset checkpoint (a partial replay or failed update): retrying
	// would re-apply events to the mutated builder and silently corrupt
	// the next model. The server keeps serving its last good state.
	failed error
}

// DefaultPoll is the tail polling interval when none is given.
const DefaultPoll = 500 * time.Millisecond

// maxTailBackoff caps the exponential backoff between retries of a
// transiently failing poll.
const maxTailBackoff = 30 * time.Second

// TransientPollError marks a poll failure that did NOT touch the
// builder — the log was momentarily unreadable (rotated away, a stalled
// mount, a permission flap) but no state diverged, so retrying is safe
// and Run does exactly that with capped exponential backoff instead of
// killing ingest. Contrast the poisoning errors (replay or update
// failures after the builder mutated), which stay fatal.
type TransientPollError struct{ Err error }

func (e *TransientPollError) Error() string { return "server: transient poll failure: " + e.Err.Error() }
func (e *TransientPollError) Unwrap() error { return e.Err }

// NewTailer resumes tailing path from offset. builder must hold exactly
// the events in [0, offset) — the builder used to construct the server's
// current model. The Tailer takes ownership of it.
func NewTailer(srv *Server, path string, poll time.Duration, builder *ratings.Builder, offset int64) *Tailer {
	if poll <= 0 {
		poll = DefaultPoll
	}
	return &Tailer{srv: srv, path: path, poll: poll, builder: builder, offset: offset}
}

// NewTailerFromDataset is NewTailer for callers that hold the dataset at
// offset but no live Builder — the warm-restore boot path. The builder is
// reconstructed from the dataset on the first poll that actually finds
// events, keeping that cost off the time-to-serving path.
func NewTailerFromDataset(srv *Server, path string, poll time.Duration, d *ratings.Dataset, offset int64) *Tailer {
	if poll <= 0 {
		poll = DefaultPoll
	}
	return &Tailer{srv: srv, path: path, poll: poll, base: d, offset: offset}
}

// Offset returns the event-log offset of the last ingested record.
func (t *Tailer) Offset() int64 { return t.offset }

// Poll ingests every complete record currently past the checkpoint and, if
// there were any, swaps an updated model into the server. It returns the
// number of events ingested. Safe to call from one goroutine (Run's, or a
// test's — not both). After an ingest error (an invalid event in the log,
// a failed update) the tailer is poisoned: every later Poll returns the
// same error rather than re-applying events to the half-mutated builder.
func (t *Tailer) Poll() (int, error) {
	if t.failed != nil {
		return 0, t.failed
	}
	f, err := os.Open(t.path)
	if err != nil {
		// Nothing was mutated: the log being momentarily unopenable
		// (rotation, a flapping mount) must not kill ingest.
		t.srv.metrics.tailTransient.Add(1)
		return 0, &TransientPollError{Err: fmt.Errorf("open log: %w", err)}
	}
	defer f.Close()
	events, newOffset, err := store.ReadLogFrom(f, t.offset)
	if err != nil {
		if !errors.Is(err, store.ErrTruncated) {
			// Also pre-mutation: a read error (IO fault, a half-written
			// region that is not the torn-tail shape) leaves the builder
			// exactly at its checkpoint, so the retry is safe. A genuinely
			// corrupt log keeps failing here — visible as a climbing
			// trustd_tail_transient_errors_total while the server serves
			// its last good state, which is the honest degraded behavior.
			t.srv.metrics.tailTransient.Add(1)
			return 0, &TransientPollError{Err: fmt.Errorf("tail log: %w", err)}
		}
		// Torn tail: ingest the intact prefix, re-read the rest later.
		t.srv.metrics.truncatedReads.Add(1)
	}
	if len(events) == 0 {
		return 0, nil
	}
	if t.builder == nil {
		t.builder = ratings.NewBuilderFrom(t.base)
		t.base = nil
	}
	// From here on the builder is mutated; any failure poisons the tailer
	// so a retry cannot double-apply the prefix Replay already folded in.
	if err := store.Replay(events, t.builder); err != nil {
		t.failed = fmt.Errorf("server: replay at offset %d: %w", t.offset, err)
		return 0, t.failed
	}
	newD := t.builder.Snapshot()
	cur, _, _ := t.srv.Current()
	model, err := cur.Update(newD)
	if err != nil {
		t.failed = fmt.Errorf("server: incremental update: %w", err)
		return 0, t.failed
	}
	t.srv.Swap(model, newOffset)
	t.offset = newOffset
	t.srv.metrics.eventsIngested.Add(int64(len(events)))
	return len(events), nil
}

// Run polls until ctx is cancelled. Transient poll failures (the log
// momentarily unreadable, nothing mutated) are retried with capped
// exponential backoff — poll interval doubling per consecutive failure
// up to maxTailBackoff — so a log rotation or IO blip costs delayed
// freshness, not a dead ingest loop. A poisoning failure (replay or
// update error after the builder mutated) stops the loop and returns
// the error — the server keeps serving its last good model, and the
// operator decides whether to restart.
func (t *Tailer) Run(ctx context.Context) error {
	delay := t.poll
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
		_, err := t.Poll()
		var transient *TransientPollError
		switch {
		case err == nil:
			delay = t.poll
		case errors.As(err, &transient):
			delay *= 2
			if cap := max(maxTailBackoff, t.poll); delay > cap {
				delay = cap
			}
		default:
			return err
		}
		timer.Reset(delay)
	}
}

// Open bootstraps a serving stack from an event log: it replays the whole
// log (tolerating a torn final record), derives the model, and returns a
// Server plus a Tailer checkpointed at the end of the intact prefix. Start
// the tailer with go tailer.Run(ctx).
func Open(path string, poll time.Duration, opts Options, derive ...weboftrust.Option) (*Server, *Tailer, error) {
	return openInto(nil, path, poll, opts, derive...)
}

// openInto is Open publishing into an existing pending server when into
// is non-nil (the early-listen boot path; see OpenCheckpointedInto).
func openInto(into *Server, path string, poll time.Duration, opts Options, derive ...weboftrust.Option) (*Server, *Tailer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("server: open log: %w", err)
	}
	defer f.Close()
	events, offset, err := store.ReadLogFrom(f, 0)
	if err != nil && !errors.Is(err, store.ErrTruncated) {
		return nil, nil, fmt.Errorf("server: read log: %w", err)
	}
	builder := ratings.NewBuilder()
	if err := store.Replay(events, builder); err != nil {
		return nil, nil, err
	}
	model, err := weboftrust.Derive(builder.Snapshot(), derive...)
	if err != nil {
		return nil, nil, err
	}
	srv := adoptOrNew(into, model, offset, opts)
	return srv, NewTailer(srv, path, poll, builder, offset), nil
}
