package server

import (
	"fmt"
	"net/http"
	"testing"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/synth"
)

// TestRankEndpoint: the /v1/rank leaderboard and per-user lookups agree
// with the facade's converged EigenTrust vector, and parameters are
// validated like every other endpoint.
func TestRankEndpoint(t *testing.T) {
	srv, _, d := openServer(t)
	h := srv.Handler()
	model, _, _ := srv.Current()
	vec, iters, err := model.GlobalRanks()
	if err != nil {
		t.Fatal(err)
	}

	resp := decode[RankResponse](t, get(t, h, "/v1/rank?k=5"))
	if resp.K != 5 || resp.Users != d.NumUsers() || resp.Iterations != iters {
		t.Fatalf("leaderboard header = %+v, want k=5 users=%d iterations=%d", resp, d.NumUsers(), iters)
	}
	if len(resp.Results) != 5 {
		t.Fatalf("leaderboard has %d rows, want 5", len(resp.Results))
	}
	for i, row := range resp.Results {
		if row.Rank != i+1 {
			t.Errorf("row %d has rank %d", i, row.Rank)
		}
		if row.Score != vec[row.User] {
			t.Errorf("row %d user %d score %v, want %v", i, row.User, row.Score, vec[row.User])
		}
		if i > 0 && row.Score > resp.Results[i-1].Score {
			t.Errorf("leaderboard not descending at row %d", i)
		}
	}

	// Per-user rank: 1-based, consistent with a full scan of the vector,
	// and the leaderboard's own rows round-trip to their positions.
	for _, u := range []int{0, 7, d.NumUsers() - 1, resp.Results[0].User} {
		ur := decode[RankUserResponse](t, get(t, h, fmt.Sprintf("/v1/rank?user=%d", u)))
		if ur.Score != vec[u] {
			t.Errorf("user %d score %v, want %v", u, ur.Score, vec[u])
		}
		wantRank := 1
		for j, v := range vec {
			if v > vec[u] || (v == vec[u] && j < u) {
				wantRank++
			}
		}
		if ur.Rank != wantRank {
			t.Errorf("user %d rank %d, want %d", u, ur.Rank, wantRank)
		}
	}
	if top := decode[RankUserResponse](t, get(t, h, fmt.Sprintf("/v1/rank?user=%d", resp.Results[0].User))); top.Rank != 1 {
		t.Errorf("leaderboard head has rank %d", top.Rank)
	}

	for url, want := range map[string]int{
		"/v1/rank?user=999999": http.StatusNotFound,
		"/v1/rank?user=bogus":  http.StatusBadRequest,
		"/v1/rank?k=0":         http.StatusBadRequest,
	} {
		if rec := get(t, h, url); rec.Code != want {
			t.Errorf("GET %s = %d, want %d", url, rec.Code, want)
		}
	}
}

// TestRankWarmChainAcrossSwaps: an incremental swap installs an eagerly
// warm-refreshed vector — at most rankRefreshIters power iterations,
// bitwise equal to manually chaining GlobalRanksFrom from the parent's
// vector — while a non-incremental swap falls back to a lazy cold solve.
func TestRankWarmChainAcrossSwaps(t *testing.T) {
	srv, tailer, d := openServer(t)
	h := srv.Handler()

	// Force the root state's lazy cold solve through the endpoint.
	get(t, h, "/v1/rank?k=3")
	prevVec, prevIters, ok := srv.cur.Load().rank.peek()
	if !ok {
		t.Fatal("root rank not computed after /v1/rank")
	}
	if prevIters < rankRefreshIters {
		t.Fatalf("cold solve took %d iterations; expected more than the refresh budget %d", prevIters, rankRefreshIters)
	}

	appendEvents(t, tailer.path, growBatch(d, 0))
	if n, err := tailer.Poll(); err != nil || n == 0 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	st := srv.cur.Load()
	vec, iters, ok := st.rank.peek()
	if !ok {
		t.Fatal("incremental swap did not install an eager rank vector")
	}
	if iters > rankRefreshIters {
		t.Fatalf("warm refresh used %d iterations, budget %d", iters, rankRefreshIters)
	}
	newModel, _, _ := srv.Current()
	wantVec, wantIters, err := newModel.GlobalRanksFrom(prevVec, rankRefreshIters)
	if err != nil {
		t.Fatal(err)
	}
	if iters != wantIters || len(vec) != len(wantVec) {
		t.Fatalf("warm chain: %d iters / %d entries, want %d / %d", iters, len(vec), wantIters, len(wantVec))
	}
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("warm chain rank[%d] = %v, want %v (must be deterministic)", i, vec[i], wantVec[i])
		}
	}
	// The endpoint reflects the refreshed chain.
	resp := decode[RankResponse](t, get(t, h, "/v1/rank?k=3"))
	if resp.Iterations != iters {
		t.Errorf("served iterations %d, want %d", resp.Iterations, iters)
	}

	// A non-incremental swap (fresh derive: no parent link to the served
	// state) reverts to the lazy cold path.
	cold, err := weboftrust.Derive(newModel.Dataset())
	if err != nil {
		t.Fatal(err)
	}
	srv.Swap(cold, 0)
	if _, _, ok := srv.cur.Load().rank.peek(); ok {
		t.Fatal("non-incremental swap should leave the rank solve lazy")
	}
	get(t, h, "/v1/rank?k=3")
	if _, iters, ok := srv.cur.Load().rank.peek(); !ok || iters <= rankRefreshIters {
		t.Fatalf("cold re-solve after root swap: ok=%v iters=%d", ok, iters)
	}
}

// tick grows d by one user writing one review in the least-popular
// category, rated by one existing user — the canonical small ingest tick
// that leaves most of the community's derived state untouched.
func tick(t *testing.T, d *ratings.Dataset) *ratings.Dataset {
	t.Helper()
	b := ratings.NewBuilderFrom(d)
	cat := ratings.CategoryID(d.NumCategories() - 1)
	writer := b.AddUser("tick-writer")
	oid, err := b.AddObject(cat, "tick-object")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := b.AddReview(writer, oid)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRating(0, rid, ratings.QuantizeRating(0.8)); err != nil {
		t.Fatal(err)
	}
	return b.Snapshot()
}

// TestCacheCarryoverRetention: across a one-category ingest tick, the
// fresh state inherits the result-cache entries the dirty set proves
// unchanged — more than half of a cache seeded across the whole
// community — and every inherited entry is bitwise what the new model
// computes fresh. Pinned at several worker counts and shard specs, since
// the carry-over proof leans on the pipeline's bitwise-equivalence
// discipline.
func TestCacheCarryoverRetention(t *testing.T) {
	cfg := synth.Small()
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grown := tick(t, d)

	cases := []struct {
		name string
		opts []weboftrust.Option
	}{
		{"serial", []weboftrust.Option{weboftrust.WithWorkers(1)}},
		{"workers2", []weboftrust.Option{weboftrust.WithWorkers(2)}},
		{"parallel", nil},
		{"shard0of2", []weboftrust.Option{weboftrust.WithShard(0, 2)}},
		{"shard1of3", []weboftrust.Option{weboftrust.WithShard(1, 3)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model, err := weboftrust.Derive(d, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			srv := New(model, 0, Options{CacheResults: 4 * d.NumUsers()})
			st := srv.cur.Load()
			var seededTopk, seededProp int
			for u := 0; u < d.NumUsers(); u++ {
				uid := ratings.UserID(u)
				if !model.Owns(uid) {
					continue
				}
				srv.ranked(st, kindTopK, uid, 10)
				seededTopk++
				if u%7 == 0 {
					srv.ranked(st, kindAppleseed, uid, 10)
					seededProp++
				}
			}
			if got := st.results.len(); got != seededTopk+seededProp {
				t.Fatalf("seeded %d entries, cache holds %d", seededTopk+seededProp, got)
			}

			upd, err := model.Update(grown)
			if err != nil {
				t.Fatal(err)
			}
			srv.Swap(upd, 1)
			newSt := srv.cur.Load()
			kept := newSt.results.len()
			if kept*2 <= seededTopk+seededProp {
				t.Fatalf("carry-over kept %d of %d entries; want more than half for a one-category tick",
					kept, seededTopk+seededProp)
			}
			if got := srv.metrics.cacheCarryover.Load(); got != int64(kept) {
				t.Errorf("carryover counter %d, cache holds %d", got, kept)
			}

			// Every inherited entry must be bitwise what the new model
			// computes fresh — the whole point of the safety proof.
			for _, e := range newSt.results.snapshot() {
				var want []weboftrust.Ranked
				switch e.key.kind {
				case kindTopK:
					want = upd.TopTrusted(e.key.user, e.key.k)
				case kindAppleseed:
					want, err = upd.Propagate(weboftrust.PropagateAppleseed, e.key.user, e.key.k)
					if err != nil {
						t.Fatal(err)
					}
				default:
					t.Fatalf("unexpected kind %d in carried cache", e.key.kind)
				}
				if len(e.ranked) != len(want) {
					t.Fatalf("user %d kind %d: carried %d rows, fresh %d", e.key.user, e.key.kind, len(e.ranked), len(want))
				}
				for i := range want {
					if e.ranked[i].User != want[i].User || e.ranked[i].Score != want[i].Score {
						t.Fatalf("user %d kind %d row %d: carried (%d,%v), fresh (%d,%v)",
							e.key.user, e.key.kind, i, e.ranked[i].User, e.ranked[i].Score, want[i].User, want[i].Score)
					}
				}
			}
			// Dropped entries correspond to dirty/tainted sources only.
			dirty := upd.DirtyUsers()
			if dirty == nil {
				t.Fatal("update produced no dirty set")
			}
			for _, e := range newSt.results.snapshot() {
				if e.key.kind == kindTopK && dirty[e.key.user] {
					t.Fatalf("dirty user %d's topk entry survived the swap", e.key.user)
				}
			}
		})
	}
}

// TestRankDeterministicAcrossWorkerCounts: the cold rank vector and the
// warm chain are bitwise-identical regardless of pipeline parallelism —
// the property the cluster harness's byte-comparison leans on.
func TestRankDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := synth.Small()
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grown := tick(t, d)
	var refCold, refWarm []float64
	for i, w := range []int{1, 2, 0} {
		model, err := weboftrust.Derive(d, weboftrust.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		cold, _, err := model.GlobalRanks()
		if err != nil {
			t.Fatal(err)
		}
		upd, err := model.Update(grown)
		if err != nil {
			t.Fatal(err)
		}
		warm, _, err := upd.GlobalRanksFrom(cold, rankRefreshIters)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refCold, refWarm = cold, warm
			continue
		}
		for j := range refCold {
			if cold[j] != refCold[j] {
				t.Fatalf("workers=%d: cold rank[%d] differs", w, j)
			}
		}
		for j := range refWarm {
			if warm[j] != refWarm[j] {
				t.Fatalf("workers=%d: warm rank[%d] differs", w, j)
			}
		}
	}
}

// TestRankWarmBudgetMedium pins the acceptance claim at the Medium
// preset: a cold EigenTrust solve needs at least 5x the warm refresh
// budget, so an incremental swap's eager refresh does >=5x less power-
// iteration work than recomputing from scratch — while staying within a
// small drift of the fully converged vector (the geometric tail bound
// documented at rankRefreshIters).
func TestRankWarmBudgetMedium(t *testing.T) {
	d, _, err := synth.Generate(synth.Medium())
	if err != nil {
		t.Fatal(err)
	}
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	cold, coldIters, err := model.GlobalRanks()
	if err != nil {
		t.Fatal(err)
	}
	if coldIters < 5*rankRefreshIters {
		t.Fatalf("cold solve converged in %d iterations; want >= 5x the warm budget (%d)", coldIters, 5*rankRefreshIters)
	}

	upd, err := model.Update(tick(t, d))
	if err != nil {
		t.Fatal(err)
	}
	warm, warmIters, err := upd.GlobalRanksFrom(cold, rankRefreshIters)
	if err != nil {
		t.Fatal(err)
	}
	if warmIters > rankRefreshIters {
		t.Fatalf("warm refresh used %d iterations, budget %d", warmIters, rankRefreshIters)
	}
	converged, _, err := upd.GlobalRanks()
	if err != nil {
		t.Fatal(err)
	}
	var drift float64
	for i := range converged {
		dd := warm[i] - converged[i]
		if dd < 0 {
			dd = -dd
		}
		drift += dd
	}
	if drift > 1e-2 {
		t.Fatalf("warm vector drift L1 = %v after a one-tick refresh, bound 1e-2", drift)
	}
}
