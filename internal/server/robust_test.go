package server

// Robustness-layer tests: bounded in-flight admission (shed with 429
// under overload) and tail-ingest survival of transient log failures.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"weboftrust/internal/ratings"
)

// TestAdmissionShedsOverload pins the in-flight bound end to end: with
// MaxInFlight=1 and the only admitted request parked inside its row
// computation, a second compute query is shed with 429 + Retry-After,
// the shed counter reaches both stats surfaces, and — crucially — the
// observability endpoints stay reachable while the server is "full".
func TestAdmissionShedsOverload(t *testing.T) {
	srv, _, _ := openServer(t)
	srv.opts.MaxInFlight = 1
	gate := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.computeGate = func(u ratings.UserID) {
		once.Do(func() { close(gate) })
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/topk?user=1&k=5")
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-gate // the admitted request is now parked mid-compute

	resp, err := http.Get(ts.URL + "/v1/topk?user=2&k=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request while full: got %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatalf("429 without Retry-After")
	}

	// Observability must not be shed: operators need to see INTO an
	// overloaded server.
	for _, p := range []string{"/v1/stats", "/healthz", "/readyz", "/metrics"} {
		r2, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatalf("GET %s while full: %v", p, err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("GET %s while full: %d, want 200", p, r2.StatusCode)
		}
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("admitted request: got %d, want 200", code)
	}

	if got := srv.metrics.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	rec := get(t, srv.Handler(), "/v1/stats")
	stats := decode[StatsResponse](t, rec)
	if stats.ShedRequests != 1 {
		t.Fatalf("/v1/stats shed_requests = %d, want 1", stats.ShedRequests)
	}
	mrec := get(t, srv.Handler(), "/metrics")
	if !strings.Contains(mrec.Body.String(), "trustd_shed_total 1") {
		t.Fatalf("/metrics missing trustd_shed_total 1")
	}
	// Admission released its slot: a fresh compute query is served.
	r3 := get(t, srv.Handler(), "/v1/topk?user=3&k=5")
	if r3.Code != http.StatusOK {
		t.Fatalf("after release: %d, want 200", r3.Code)
	}
}

// TestAdmissionDisabledByDefault pins that the zero value keeps the old
// behavior: no bound, nothing shed.
func TestAdmissionDisabledByDefault(t *testing.T) {
	srv, _, _ := openServer(t)
	h := srv.Handler()
	for i := 0; i < 5; i++ {
		if rec := get(t, h, "/v1/topk?user=1&k=5"); rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d, want 200", i, rec.Code)
		}
	}
	if got := srv.metrics.shed.Load(); got != 0 {
		t.Fatalf("shed counter = %d, want 0", got)
	}
}

// TestTailerSurvivesTransientLogErrors pins the transient/poison split:
// a momentarily unreadable log yields a TransientPollError (builder
// untouched, counter bumped), and once the log is back the SAME tailer
// resumes ingesting — transient failures must not poison it.
func TestTailerSurvivesTransientLogErrors(t *testing.T) {
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, time.Hour, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Hide the log: the poll must fail transiently, not poison.
	hidden := path + ".hidden"
	if err := os.Rename(path, hidden); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, perr := tailer.Poll()
		var transient *TransientPollError
		if !errors.As(perr, &transient) {
			t.Fatalf("poll %d with missing log: %v, want TransientPollError", i, perr)
		}
	}
	if got := srv.metrics.tailTransient.Load(); got != 2 {
		t.Fatalf("tailTransient = %d, want 2", got)
	}

	// Restore the log with appended growth: the tailer must ingest it.
	if err := os.Rename(hidden, path); err != nil {
		t.Fatal(err)
	}
	appendEvents(t, path, growBatch(d, 1))
	n, err := tailer.Poll()
	if err != nil {
		t.Fatalf("poll after restore: %v", err)
	}
	if n == 0 {
		t.Fatalf("poll after restore ingested nothing")
	}
	if _, _, version := srv.Current(); version != 2 {
		t.Fatalf("version after recovery = %d, want 2", version)
	}
	rec := get(t, srv.Handler(), "/v1/stats")
	stats := decode[StatsResponse](t, rec)
	if stats.TailTransientErrors != 2 {
		t.Fatalf("/v1/stats tail_transient_errors = %d, want 2", stats.TailTransientErrors)
	}
}

// TestTailerRunBacksOffOnTransient drives Run with a missing log and a
// tiny poll: the loop must keep running (backing off) rather than
// return, then ingest promptly once the log reappears.
func TestTailerRunBacksOffOnTransient(t *testing.T) {
	path, d := writeLogFile(t)
	srv, tailer, err := Open(path, 2*time.Millisecond, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hidden := path + ".hidden"
	if err := os.Rename(path, hidden); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- tailer.Run(ctx) }()

	// Let a few transient polls fail, then restore the log with growth.
	deadline := time.Now().Add(2 * time.Second)
	for srv.metrics.tailTransient.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no transient polls observed")
		}
		select {
		case err := <-runErr:
			t.Fatalf("Run returned during transient failures: %v", err)
		case <-time.After(time.Millisecond):
		}
	}
	if err := os.Rename(hidden, path); err != nil {
		t.Fatal(err)
	}
	appendEvents(t, path, growBatch(d, 1))
	for {
		if _, _, version := srv.Current(); version >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tailer never recovered after log restore")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-runErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run: %v, want context.Canceled", err)
	}
}
