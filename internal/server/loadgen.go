package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"weboftrust/internal/stats"
)

// LoadgenConfig parameterises a load run against a live trustd.
type LoadgenConfig struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8080".
	BaseURL string
	// Duration bounds the run.
	Duration time.Duration
	// Concurrency is the number of in-flight clients.
	Concurrency int
	// K is the top-k size requested.
	K int
	// Users is the user-id space to sample from; 0 fetches the served
	// dataset's user count from /v1/stats.
	Users int
	// Seed drives the per-worker user sampling.
	Seed uint64
}

// LoadgenReport summarises a load run.
type LoadgenReport struct {
	Requests int
	Errors   int
	Elapsed  time.Duration
	QPS      float64
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
}

func (r *LoadgenReport) String() string {
	return fmt.Sprintf("%d requests in %v (%.0f req/s), %d errors\nlatency p50 %v  p95 %v  p99 %v  max %v",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.QPS, r.Errors, r.P50, r.P95, r.P99, r.Max)
}

// RunLoadgen hammers /v1/topk with random users until the duration (or
// ctx) expires and reports throughput and latency quantiles. It is the
// "is the serving path actually fast" harness: run it against a live
// daemon while the tailer ingests to observe both halves under load.
func RunLoadgen(ctx context.Context, cfg LoadgenConfig) (*LoadgenReport, error) {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 4
	}
	if cfg.K < 1 {
		cfg.K = 10
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	users := cfg.Users
	if users == 0 {
		var sr StatsResponse
		if err := getJSON(ctx, cfg.BaseURL+"/v1/stats", &sr); err != nil {
			return nil, fmt.Errorf("loadgen: fetch user count: %w", err)
		}
		users = sr.Dataset.Users
	}
	if users < 1 {
		return nil, fmt.Errorf("loadgen: served dataset has no users")
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	type workerResult struct {
		latencies []time.Duration
		errs      int
	}
	results := make([]workerResult, cfg.Concurrency)
	var wg sync.WaitGroup
	startedAt := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRand(cfg.Seed + uint64(w)*0x9e37)
			client := &http.Client{}
			for ctx.Err() == nil {
				u := rng.IntN(users)
				url := fmt.Sprintf("%s/v1/topk?user=%d&k=%d", cfg.BaseURL, u, cfg.K)
				t0 := time.Now()
				if err := drainGet(ctx, client, url); err != nil {
					if ctx.Err() != nil {
						return
					}
					results[w].errs++
					continue
				}
				results[w].latencies = append(results[w].latencies, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(startedAt)

	var all []time.Duration
	report := &LoadgenReport{Elapsed: elapsed}
	for _, r := range results {
		all = append(all, r.latencies...)
		report.Errors += r.errs
	}
	report.Requests = len(all)
	if elapsed > 0 {
		report.QPS = float64(report.Requests) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(all)-1))
			return all[i]
		}
		report.P50, report.P95, report.P99 = q(0.50), q(0.95), q(0.99)
		report.Max = all[len(all)-1]
	}
	return report, nil
}

func getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func drainGet(ctx context.Context, client *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return nil
}
