package mat

import (
	"fmt"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row form. It is immutable
// after construction; build one with a Builder. The zero value is an empty
// 0x0 matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int32   // len rows+1; row i occupies [rowPtr[i], rowPtr[i+1])
	colIdx     []int32   // column of each stored element, sorted within a row
	vals       []float64 // value of each stored element
}

// Builder accumulates entries for a CSR matrix. Entries may be added in any
// order; adding to the same cell twice accumulates the values. The zero
// value is not usable; create one with NewBuilder.
type Builder struct {
	rows, cols int
	cells      map[uint64]float64
}

// NewBuilder returns a builder for a rows x cols sparse matrix.
func NewBuilder(rows, cols int) *Builder {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: NewBuilder(%d, %d): negative dimension", rows, cols))
	}
	return &Builder{rows: rows, cols: cols, cells: make(map[uint64]float64)}
}

func (b *Builder) key(i, j int) uint64 {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("mat: builder index (%d, %d) out of range %dx%d", i, j, b.rows, b.cols))
	}
	return uint64(uint32(i))<<32 | uint64(uint32(j))
}

// Add accumulates v into cell (i, j).
func (b *Builder) Add(i, j int, v float64) {
	b.cells[b.key(i, j)] += v
}

// Set assigns v to cell (i, j), replacing any accumulated value.
func (b *Builder) Set(i, j int, v float64) {
	b.cells[b.key(i, j)] = v
}

// Len returns the number of distinct cells currently stored, including any
// that have accumulated to exactly zero.
func (b *Builder) Len() int { return len(b.cells) }

// Build freezes the accumulated cells into a CSR matrix. Cells whose value
// is exactly zero are dropped. The builder may be reused afterwards; it is
// left empty.
func (b *Builder) Build() *CSR {
	type entry struct {
		i, j int32
		v    float64
	}
	entries := make([]entry, 0, len(b.cells))
	for k, v := range b.cells {
		if v == 0 {
			continue
		}
		entries = append(entries, entry{i: int32(k >> 32), j: int32(uint32(k)), v: v})
	}
	sort.Slice(entries, func(a, c int) bool {
		if entries[a].i != entries[c].i {
			return entries[a].i < entries[c].i
		}
		return entries[a].j < entries[c].j
	})
	m := &CSR{
		rows:   b.rows,
		cols:   b.cols,
		rowPtr: make([]int32, b.rows+1),
		colIdx: make([]int32, len(entries)),
		vals:   make([]float64, len(entries)),
	}
	for n, e := range entries {
		m.rowPtr[e.i+1]++
		m.colIdx[n] = e.j
		m.vals[n] = e.v
	}
	for i := 0; i < b.rows; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	b.cells = make(map[uint64]float64)
	return m
}

// NewCSRFromRows builds a CSR matrix directly from per-row column/value
// pairs. rows[i] lists the columns of row i and vals[i] the matching values;
// columns within a row must be unique but may be unsorted. vals may be nil,
// in which case every stored element has value 1 (a boolean adjacency
// matrix).
func NewCSRFromRows(numRows, numCols int, rows [][]int32, vals [][]float64) (*CSR, error) {
	if len(rows) != numRows {
		return nil, fmt.Errorf("%w: %d row lists for %d rows", ErrShape, len(rows), numRows)
	}
	if vals != nil && len(vals) != numRows {
		return nil, fmt.Errorf("%w: %d value lists for %d rows", ErrShape, len(vals), numRows)
	}
	nnz := 0
	for i, r := range rows {
		if vals != nil && len(vals[i]) != len(r) {
			return nil, fmt.Errorf("%w: row %d has %d cols but %d vals", ErrShape, i, len(r), len(vals[i]))
		}
		nnz += len(r)
	}
	m := &CSR{
		rows:   numRows,
		cols:   numCols,
		rowPtr: make([]int32, numRows+1),
		colIdx: make([]int32, 0, nnz),
		vals:   make([]float64, 0, nnz),
	}
	type cv struct {
		c int32
		v float64
	}
	var scratch []cv
	for i, r := range rows {
		scratch = scratch[:0]
		for k, c := range r {
			if c < 0 || int(c) >= numCols {
				return nil, fmt.Errorf("%w: row %d column %d out of range %d", ErrShape, i, c, numCols)
			}
			v := 1.0
			if vals != nil {
				v = vals[i][k]
			}
			scratch = append(scratch, cv{c: c, v: v})
		}
		sort.Slice(scratch, func(a, b int) bool { return scratch[a].c < scratch[b].c })
		for k := 1; k < len(scratch); k++ {
			if scratch[k].c == scratch[k-1].c {
				return nil, fmt.Errorf("mat: row %d has duplicate column %d", i, scratch[k].c)
			}
		}
		for _, e := range scratch {
			m.colIdx = append(m.colIdx, e.c)
			m.vals = append(m.vals, e.v)
		}
		m.rowPtr[i+1] = int32(len(m.colIdx))
	}
	return m, nil
}

// Dims returns the number of rows and columns.
func (m *CSR) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored (non-zero) elements.
func (m *CSR) NNZ() int { return len(m.vals) }

// Density returns NNZ divided by rows*cols, or 0 for an empty matrix.
func (m *CSR) Density() float64 {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.rows) * float64(m.cols))
}

// Row returns the stored columns and values of row i. The returned slices
// share the matrix's backing storage and must not be modified. Columns are
// in ascending order.
func (m *CSR) Row(i int) (cols []int32, vals []float64) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// RowNNZ returns the number of stored elements in row i.
func (m *CSR) RowNNZ(i int) int {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return int(m.rowPtr[i+1] - m.rowPtr[i])
}

// At returns the value at (i, j), which is 0 if the cell is not stored.
// Lookup is a binary search within row i.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of range %d", j, m.cols))
	}
	k := sort.Search(len(cols), func(n int) bool { return cols[n] >= int32(j) })
	if k < len(cols) && cols[k] == int32(j) {
		return vals[k]
	}
	return 0
}

// Has reports whether cell (i, j) is stored.
func (m *CSR) Has(i, j int) bool {
	cols, _ := m.Row(i)
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of range %d", j, m.cols))
	}
	k := sort.Search(len(cols), func(n int) bool { return cols[n] >= int32(j) })
	return k < len(cols) && cols[k] == int32(j)
}

// Transpose returns a new CSR matrix that is the transpose of m.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int32, m.cols+1),
		colIdx: make([]int32, len(m.colIdx)),
		vals:   make([]float64, len(m.vals)),
	}
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for i := 0; i < m.cols; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := make([]int32, m.cols)
	copy(next, t.rowPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			c := m.colIdx[k]
			pos := next[c]
			t.colIdx[pos] = int32(i)
			t.vals[pos] = m.vals[k]
			next[c]++
		}
	}
	return t
}

// MulVec computes dst = m * x and returns dst. If dst is nil a new slice is
// allocated; otherwise it must have length m.Rows(). x must have length
// m.Cols().
func (m *CSR) MulVec(dst, x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: MulVec: len(x)=%d, want %d", len(x), m.cols))
	}
	if dst == nil {
		dst = make([]float64, m.rows)
	} else if len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVec: len(dst)=%d, want %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
	return dst
}

// RowSum returns the sum of the stored values of row i.
func (m *CSR) RowSum(i int) float64 {
	_, vals := m.Row(i)
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// Dense expands m into a dense matrix. Intended for tests and small
// matrices; the result has m.Rows() x m.Cols() cells.
func (m *CSR) Dense() *Dense {
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		cols, vals := m.Row(i)
		row := d.Row(i)
		for k, c := range cols {
			row[c] = vals[k]
		}
	}
	return d
}
