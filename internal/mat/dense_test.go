package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims() = (%d, %d), want (3, 4)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d, %d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
	if m.NNZ() != 0 {
		t.Errorf("NNZ() = %d, want 0", m.NNZ())
	}
}

func TestDenseSetAtAdd(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1.5)
	m.Set(1, 2, -2)
	m.Add(1, 2, 0.5)
	if got := m.At(0, 0); got != 1.5 {
		t.Errorf("At(0,0) = %v, want 1.5", got)
	}
	if got := m.At(1, 2); got != -1.5 {
		t.Errorf("At(1,2) = %v, want -1.5", got)
	}
	if got := m.At(0, 1); got != 0 {
		t.Errorf("At(0,1) = %v, want 0", got)
	}
}

func TestDenseOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	cases := []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, 2) },
		func() { m.At(-1, 0) },
		func() { m.Set(0, -1, 1) },
		func() { m.Row(2) },
		func() { m.Row(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseData(t *testing.T) {
	m, err := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("NewDenseData: %v", err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := NewDenseData(2, 2, []float64{1, 2, 3}); err == nil {
		t.Error("expected error for wrong data length")
	}
}

func TestDenseRowShared(t *testing.T) {
	m := NewDense(2, 2)
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Errorf("Row mutation not reflected: At(1,0) = %v, want 7", m.At(1, 0))
	}
}

func TestDenseClone(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 3)
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 3 {
		t.Errorf("clone mutation leaked: At(0,1) = %v, want 3", m.At(0, 1))
	}
	if c.At(0, 1) != 9 {
		t.Errorf("clone At(0,1) = %v, want 9", c.At(0, 1))
	}
}

func TestDenseRowSumMaxScale(t *testing.T) {
	m := NewDense(2, 3)
	for j, v := range []float64{1, 5, 3} {
		m.Set(0, j, v)
	}
	if got := m.RowSum(0); got != 9 {
		t.Errorf("RowSum(0) = %v, want 9", got)
	}
	if got := m.RowMax(0); got != 5 {
		t.Errorf("RowMax(0) = %v, want 5", got)
	}
	if got := m.RowSum(1); got != 0 {
		t.Errorf("RowSum(1) = %v, want 0", got)
	}
	m.ScaleRow(0, 2)
	if got := m.At(0, 1); got != 10 {
		t.Errorf("after ScaleRow At(0,1) = %v, want 10", got)
	}
}

func TestDenseRowMaxEmptyCols(t *testing.T) {
	m := NewDense(2, 0)
	if got := m.RowMax(0); got != 0 {
		t.Errorf("RowMax on 0-column matrix = %v, want 0", got)
	}
}

func TestDenseFillNNZDensity(t *testing.T) {
	m := NewDense(2, 5)
	m.Fill(1)
	if m.NNZ() != 10 {
		t.Errorf("NNZ = %d, want 10", m.NNZ())
	}
	if m.Density() != 1 {
		t.Errorf("Density = %v, want 1", m.Density())
	}
	m.Set(0, 0, 0)
	if m.NNZ() != 9 {
		t.Errorf("NNZ after zeroing = %d, want 9", m.NNZ())
	}
	empty := NewDense(0, 0)
	if empty.Density() != 0 {
		t.Errorf("empty Density = %v, want 0", empty.Density())
	}
}

func TestDenseEqualAndMaxAbsDiff(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 2)
	a.Set(0, 0, 1)
	b.Set(0, 0, 1.0000001)
	if !a.Equal(b, 1e-6) {
		t.Error("Equal with tol 1e-6 = false, want true")
	}
	if a.Equal(b, 1e-9) {
		t.Error("Equal with tol 1e-9 = true, want false")
	}
	if a.Equal(NewDense(2, 3), 1) {
		t.Error("Equal across shapes = true, want false")
	}
	if d := a.MaxAbsDiff(b); math.Abs(d-1e-7) > 1e-12 {
		t.Errorf("MaxAbsDiff = %v, want 1e-7", d)
	}
}

func TestDotSumScaleNormalize(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Sum(a); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	c := []float64{2, 2}
	Scale(c, 0.5)
	if c[0] != 1 || c[1] != 1 {
		t.Errorf("Scale = %v, want [1 1]", c)
	}
	v := []float64{1, 3}
	if !Normalize1(v) {
		t.Error("Normalize1 on nonzero vector returned false")
	}
	if math.Abs(Sum(v)-1) > 1e-15 {
		t.Errorf("after Normalize1 Sum = %v, want 1", Sum(v))
	}
	z := []float64{0, 0}
	if Normalize1(z) {
		t.Error("Normalize1 on zero vector returned true")
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// Property: Dot is symmetric and bilinear in scaling.
func TestDotPropertiesQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true // skip degenerate float inputs
			}
		}
		ab := Dot(a, b)
		ba := Dot(b, a)
		return math.Abs(ab-ba) <= 1e-9*(1+math.Abs(ab))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
