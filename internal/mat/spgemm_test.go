package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randCSR(rng *rand.Rand, rows, cols, nnz int) *CSR {
	b := NewBuilder(rows, cols)
	for k := 0; k < nnz; k++ {
		b.Set(rng.IntN(rows), rng.IntN(cols), rng.Float64()*2-1)
	}
	return b.Build()
}

func denseMul(a, b *Dense) *Dense {
	ar, ac := a.Dims()
	_, bc := b.Dims()
	out := NewDense(ar, bc)
	for i := 0; i < ar; i++ {
		for j := 0; j < bc; j++ {
			var s float64
			for k := 0; k < ac; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		a := randCSR(rng, 2+rng.IntN(8), 2+rng.IntN(8), rng.IntN(20))
		_, inner := a.Dims()
		b := randCSR(rng, inner, 2+rng.IntN(8), rng.IntN(20))
		got, err := Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := denseMul(a.Dense(), b.Dense())
		if !got.Dense().Equal(want, 1e-12) {
			t.Fatalf("trial %d: sparse product differs from dense reference", trial)
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewBuilder(2, 3).Build()
	b := NewBuilder(2, 2).Build()
	if _, err := Mul(a, b); err == nil {
		t.Error("expected shape error")
	}
}

func TestMulRowsSorted(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := randCSR(rng, 6, 6, 18)
	b := randCSR(rng, 6, 6, 18)
	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		cols, _ := got.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatalf("row %d columns not strictly ascending: %v", i, cols)
			}
		}
	}
}

func TestAddAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 2+rng.IntN(8), 2+rng.IntN(8)
		a := randCSR(rng, rows, cols, rng.IntN(20))
		b := randCSR(rng, rows, cols, rng.IntN(20))
		scale := rng.Float64()*4 - 2
		got, err := Add(a, b, scale)
		if err != nil {
			t.Fatal(err)
		}
		ad, bd := a.Dense(), b.Dense()
		want := NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want.Set(i, j, ad.At(i, j)+scale*bd.At(i, j))
			}
		}
		if !got.Dense().Equal(want, 1e-12) {
			t.Fatalf("trial %d: sparse sum differs from dense reference", trial)
		}
	}
}

func TestAddShapeError(t *testing.T) {
	if _, err := Add(NewBuilder(2, 2).Build(), NewBuilder(3, 2).Build(), 1); err == nil {
		t.Error("expected shape error")
	}
}

func TestAddCancellationDropped(t *testing.T) {
	b1 := NewBuilder(1, 2)
	b1.Set(0, 0, 1)
	b2 := NewBuilder(1, 2)
	b2.Set(0, 0, 1)
	got, err := Add(b1.Build(), b2.Build(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 {
		t.Errorf("exact cancellation should drop the cell, nnz=%d", got.NNZ())
	}
}

func TestScaleCSR(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Set(0, 1, 3)
	m := b.Build()
	s := ScaleCSR(m, 2)
	if s.At(0, 1) != 6 {
		t.Errorf("scaled value = %v, want 6", s.At(0, 1))
	}
	if m.At(0, 1) != 3 {
		t.Error("original mutated")
	}
	z := ScaleCSR(m, 0)
	if z.NNZ() != 0 {
		t.Errorf("zero scale should empty the matrix, nnz=%d", z.NNZ())
	}
	if r, c := z.Dims(); r != 2 || c != 2 {
		t.Error("zero scale changed shape")
	}
}

func TestPruneRows(t *testing.T) {
	b := NewBuilder(2, 5)
	for j, v := range []float64{0.5, 0.9, 0.1, 0.7, 0.3} {
		b.Set(0, j, v)
	}
	b.Set(1, 2, 1)
	m := b.Build()
	p := PruneRows(m, 2)
	if p.RowNNZ(0) != 2 {
		t.Fatalf("row 0 nnz = %d, want 2", p.RowNNZ(0))
	}
	if p.At(0, 1) != 0.9 || p.At(0, 3) != 0.7 {
		t.Errorf("kept wrong entries: %v", p.Dense().Row(0))
	}
	cols, _ := p.Row(0)
	if cols[0] != 1 || cols[1] != 3 {
		t.Errorf("columns not ascending after prune: %v", cols)
	}
	if p.RowNNZ(1) != 1 {
		t.Error("short rows should be untouched")
	}
	if PruneRows(m, 0).NNZ() != 0 {
		t.Error("k=0 should empty the matrix")
	}
	if PruneRows(m, -3).NNZ() != 0 {
		t.Error("negative k should empty the matrix")
	}
}

func TestRowNormalize(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Set(0, 0, 2)
	b.Set(0, 2, 6)
	b.Set(2, 1, 5)
	m := b.Build()
	n := RowNormalize(m)
	if math.Abs(n.RowSum(0)-1) > 1e-12 || math.Abs(n.RowSum(2)-1) > 1e-12 {
		t.Errorf("rows not normalised: %v, %v", n.RowSum(0), n.RowSum(2))
	}
	if n.At(0, 2) != 0.75 {
		t.Errorf("At(0,2) = %v, want 0.75", n.At(0, 2))
	}
	if n.RowNNZ(1) != 0 {
		t.Error("empty row should stay empty")
	}
	if m.At(0, 2) != 6 {
		t.Error("original mutated")
	}
}

// Property: Mul is associative with Add in the distributive sense:
// (a+b)*c == a*c + b*c.
func TestDistributivityQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		n := 2 + rng.IntN(6)
		a := randCSR(rng, n, n, rng.IntN(12))
		b := randCSR(rng, n, n, rng.IntN(12))
		c := randCSR(rng, n, n, rng.IntN(12))
		ab, err := Add(a, b, 1)
		if err != nil {
			return false
		}
		left, err := Mul(ab, c)
		if err != nil {
			return false
		}
		ac, err := Mul(a, c)
		if err != nil {
			return false
		}
		bc, err := Mul(b, c)
		if err != nil {
			return false
		}
		right, err := Add(ac, bc, 1)
		if err != nil {
			return false
		}
		return left.Dense().Equal(right.Dense(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: pruning keeps the row-wise top-k by value.
func TestPruneRowsQuick(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 88))
		m := randCSR(rng, 1+rng.IntN(6), 1+rng.IntN(10), rng.IntN(30))
		k := int(kRaw) % 8
		p := PruneRows(m, k)
		for i := 0; i < m.Rows(); i++ {
			origCols, origVals := m.Row(i)
			want := len(origCols)
			if want > k {
				want = k
			}
			if p.RowNNZ(i) != want {
				return false
			}
			// Every kept value must be >= every dropped value.
			kept := make(map[int32]bool)
			cols, _ := p.Row(i)
			minKept := math.Inf(1)
			for _, c := range cols {
				kept[c] = true
				if v := m.At(i, int(c)); v < minKept {
					minKept = v
				}
			}
			for n, c := range origCols {
				if !kept[c] && origVals[n] > minKept {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := randCSR(rng, 500, 500, 5000)
	c := randCSR(rng, 500, 500, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mul(a, c); err != nil {
			b.Fatal(err)
		}
	}
}
