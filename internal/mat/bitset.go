package mat

import "math/bits"

// Bitset is a fixed-size bit vector. The pipeline uses one per category to
// mark which users have expertise there, so the support of a derived-trust
// row (how many users a given user would trust at all) can be counted as a
// union of category bitsets instead of a full O(U·C) dot-product sweep.
type Bitset struct {
	n     int
	words []uint64
}

// NewBitset creates a bitset of n bits, all clear. It panics if n is
// negative.
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic("mat: NewBitset: negative size")
	}
	return &Bitset{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i. It panics if i is out of range.
func (b *Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		panic("mat: Bitset.Set out of range")
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i. It panics if i is out of range.
func (b *Bitset) Clear(i int) {
	if i < 0 || i >= b.n {
		panic("mat: Bitset.Clear out of range")
	}
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is set. It panics if i is out of range.
func (b *Bitset) Test(i int) bool {
	if i < 0 || i >= b.n {
		panic("mat: Bitset.Test out of range")
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// OrInto ORs b into dst, which must have the same length. It panics on a
// length mismatch.
func (b *Bitset) OrInto(dst *Bitset) {
	if dst.n != b.n {
		panic("mat: Bitset.OrInto length mismatch")
	}
	for i, w := range b.words {
		dst.words[i] |= w
	}
}

// Reset clears all bits.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}
