package mat

import "fmt"

// Mul computes the sparse matrix product a*b using Gustavson's row-wise
// algorithm. It returns an error when the inner dimensions disagree.
//
// The product of two trust matrices can fill in quickly (co-citation
// operators square the matrix); callers that iterate products should prune
// with PruneRows between steps to keep the result tractable.
func Mul(a, b *CSR) (*CSR, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := &CSR{
		rows:   a.rows,
		cols:   b.cols,
		rowPtr: make([]int32, a.rows+1),
	}
	// Gustavson: accumulate each output row in a dense scratch indexed by
	// column, tracking the touched columns for sparse reset.
	acc := make([]float64, b.cols)
	touched := make([]int32, 0, 64)
	seen := make([]bool, b.cols)
	for i := 0; i < a.rows; i++ {
		touched = touched[:0]
		aCols, aVals := a.Row(i)
		for k, j := range aCols {
			av := aVals[k]
			bCols, bVals := b.Row(int(j))
			for n, c := range bCols {
				if !seen[c] {
					seen[c] = true
					touched = append(touched, c)
				}
				acc[c] += av * bVals[n]
			}
		}
		// Emit the row in ascending column order.
		sortInt32s(touched)
		for _, c := range touched {
			if v := acc[c]; v != 0 {
				out.colIdx = append(out.colIdx, c)
				out.vals = append(out.vals, v)
			}
			acc[c] = 0
			seen[c] = false
		}
		out.rowPtr[i+1] = int32(len(out.colIdx))
	}
	return out, nil
}

// Add computes a + scale*b element-wise. Shapes must match.
func Add(a, b *CSR, scale float64) (*CSR, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := &CSR{rows: a.rows, cols: a.cols, rowPtr: make([]int32, a.rows+1)}
	for i := 0; i < a.rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		x, y := 0, 0
		for x < len(ac) || y < len(bc) {
			switch {
			case y >= len(bc) || (x < len(ac) && ac[x] < bc[y]):
				out.colIdx = append(out.colIdx, ac[x])
				out.vals = append(out.vals, av[x])
				x++
			case x >= len(ac) || bc[y] < ac[x]:
				out.colIdx = append(out.colIdx, bc[y])
				out.vals = append(out.vals, scale*bv[y])
				y++
			default:
				if v := av[x] + scale*bv[y]; v != 0 {
					out.colIdx = append(out.colIdx, ac[x])
					out.vals = append(out.vals, v)
				}
				x++
				y++
			}
		}
		out.rowPtr[i+1] = int32(len(out.colIdx))
	}
	return out, nil
}

// ScaleCSR returns a copy of m with every stored value multiplied by f.
// f = 0 yields an empty matrix of the same shape.
func ScaleCSR(m *CSR, f float64) *CSR {
	if f == 0 {
		return &CSR{rows: m.rows, cols: m.cols, rowPtr: make([]int32, m.rows+1)}
	}
	out := &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: append([]int32(nil), m.rowPtr...),
		colIdx: append([]int32(nil), m.colIdx...),
		vals:   make([]float64, len(m.vals)),
	}
	for i, v := range m.vals {
		out.vals[i] = f * v
	}
	return out
}

// PruneRows keeps only the k largest-valued entries of each row (ties
// broken toward smaller columns), returning a new matrix. It bounds the
// fill-in of iterated sparse products.
func PruneRows(m *CSR, k int) *CSR {
	if k < 0 {
		k = 0
	}
	out := &CSR{rows: m.rows, cols: m.cols, rowPtr: make([]int32, m.rows+1)}
	for i := 0; i < m.rows; i++ {
		cols, vals := m.Row(i)
		if len(cols) <= k {
			out.colIdx = append(out.colIdx, cols...)
			out.vals = append(out.vals, vals...)
		} else {
			keep := TopK(vals, k)
			sortInts(keep) // restore ascending column order positions
			for _, p := range keep {
				out.colIdx = append(out.colIdx, cols[p])
				out.vals = append(out.vals, vals[p])
			}
		}
		out.rowPtr[i+1] = int32(len(out.colIdx))
	}
	return out
}

// RowNormalize scales each row of m to sum to 1 (rows summing to zero are
// left as-is), returning a new matrix.
func RowNormalize(m *CSR) *CSR {
	out := &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: append([]int32(nil), m.rowPtr...),
		colIdx: append([]int32(nil), m.colIdx...),
		vals:   append([]float64(nil), m.vals...),
	}
	for i := 0; i < m.rows; i++ {
		lo, hi := out.rowPtr[i], out.rowPtr[i+1]
		var s float64
		for _, v := range out.vals[lo:hi] {
			s += v
		}
		if s == 0 {
			continue
		}
		for k := lo; k < hi; k++ {
			out.vals[k] /= s
		}
	}
	return out
}

func sortInt32s(xs []int32) {
	// Insertion sort: rows touched per product are short and nearly
	// sorted; avoids sort.Slice closure overhead in the hot loop.
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
