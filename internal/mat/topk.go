package mat

import "sort"

// TopK returns the indices of the k largest values, in descending value
// order. Ties break toward the smaller index, making the selection fully
// deterministic. If k >= len(values) all indices are returned (sorted the
// same way); if k <= 0 the result is empty.
//
// Selection uses an iterative quickselect with a median-of-three pivot, so
// the expected cost is O(n + k log k) rather than O(n log n); the pipeline
// calls this once per user row when binarising the derived trust matrix.
func TopK(values []float64, k int) []int {
	n := len(values)
	if k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	greater := makeGreater(values)
	quickselect(idx, k, greater)
	top := idx[:k]
	sort.Slice(top, func(a, b int) bool { return greater(top[a], top[b]) })
	return top
}

// TopKSet is TopK but returns the selection as a membership slice: out[i]
// is true iff index i is among the k largest. It avoids the final sort when
// only membership matters.
func TopKSet(values []float64, k int) []bool {
	n := len(values)
	out := make([]bool, n)
	if k <= 0 {
		return out
	}
	if k >= n {
		for i := range out {
			out[i] = true
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	quickselect(idx, k, makeGreater(values))
	for _, i := range idx[:k] {
		out[i] = true
	}
	return out
}

// makeGreater returns a strict total order over indices: by value
// descending, then index ascending. A total order makes the selected set
// unique even in the presence of equal values.
func makeGreater(values []float64) func(a, b int) bool {
	return func(a, b int) bool {
		va, vb := values[a], values[b]
		if va != vb {
			return va > vb
		}
		return a < b
	}
}

// quickselect partitions idx so that the k elements greatest under the
// strict total order occupy idx[:k] (in unspecified order). It requires
// 0 < k < len(idx) or k == len(idx), both of which it handles.
func quickselect(idx []int, k int, greater func(a, b int) bool) {
	lo, hi := 0, len(idx)
	for k > lo && k < hi {
		if hi-lo == 2 {
			if greater(idx[lo+1], idx[lo]) {
				idx[lo], idx[lo+1] = idx[lo+1], idx[lo]
			}
			return
		}
		p := partition(idx, lo, hi, greater)
		switch {
		case p == k:
			return
		case p < k:
			lo = p
		default:
			hi = p
		}
	}
}

// partition performs a Hoare partition of idx[lo:hi] (which must have at
// least 3 elements) around a median-of-three pivot and returns a split
// point p with lo < p < hi such that every element of idx[lo:p] is >= the
// pivot and every element of idx[p:hi] is <= the pivot under the order.
//
// The three samples are arranged so idx[lo] >= pivot >= idx[hi-1], which
// guarantees both scans stop inside the range and the split is strictly
// interior, so the quickselect loop always makes progress.
func partition(idx []int, lo, hi int, greater func(a, b int) bool) int {
	mid := lo + (hi-lo)/2
	last := hi - 1
	if greater(idx[mid], idx[lo]) {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if greater(idx[last], idx[lo]) {
		idx[last], idx[lo] = idx[lo], idx[last]
	}
	if greater(idx[last], idx[mid]) {
		idx[last], idx[mid] = idx[mid], idx[last]
	}
	pivot := idx[mid]
	i, j := lo, hi-1
	for {
		for {
			i++
			if !greater(idx[i], pivot) {
				break
			}
		}
		for {
			j--
			if !greater(pivot, idx[j]) {
				break
			}
		}
		if i >= j {
			return j + 1
		}
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// TopKHeap returns exactly what TopK returns — the indices of the k
// largest values in descending value order, ties toward the smaller index
// — but selects with a bounded min-heap of k indices instead of
// quickselecting an n-length index permutation. The cost is O(n log k)
// worst case (O(n + k log k) expected on unordered data, since most
// elements fail the cheap beats-the-root test) and, crucially for the
// serving path, the working memory is O(k) rather than the O(n) index
// slice TopK materialises: at a million users and k=10 that is 80 bytes
// instead of 8 MB per query.
func TopKHeap(values []float64, k int) []int {
	return TopKHeapInto(values, k, nil)
}

// TopKHeapInto is TopKHeap with a caller-owned scratch slice: the heap is
// built in dst's storage when it has capacity for min(k, len(values))
// indices, so steady-state callers (the server's query path) select with
// zero allocations. The returned slice aliases dst whenever dst was large
// enough; dst's previous contents are ignored.
func TopKHeapInto(values []float64, k int, dst []int) []int {
	n := len(values)
	if k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k == 0 {
		return nil
	}
	h := dst[:0]
	if cap(h) < k {
		h = make([]int, 0, k)
	}
	// worse orders the heap: the root is the weakest of the kept k —
	// smallest value, ties toward the larger index (the exact inverse of
	// makeGreater's order, so the kept set matches TopK's).
	worse := func(a, b int) bool {
		va, vb := values[a], values[b]
		if va != vb {
			return va < vb
		}
		return a > b
	}
	siftDown := func(h []int, i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			m := l
			if r := l + 1; r < len(h) && worse(h[r], h[l]) {
				m = r
			}
			if !worse(h[m], h[i]) {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := 0; i < n; i++ {
		if len(h) < k {
			h = append(h, i)
			// Sift the new leaf up.
			for c := len(h) - 1; c > 0; {
				p := (c - 1) / 2
				if !worse(h[c], h[p]) {
					break
				}
				h[c], h[p] = h[p], h[c]
				c = p
			}
			continue
		}
		// Ties lose to the incumbent: indices stream in ascending order,
		// so equal values keep the earlier index, matching TopK.
		if va, vr := values[i], values[h[0]]; va > vr {
			h[0] = i
			siftDown(h, 0)
		}
	}
	// Heap-sort in place: repeatedly move the current weakest to the back,
	// leaving the slice in descending order under makeGreater's total
	// order — identical to TopK's sorted output.
	for m := len(h) - 1; m > 0; m-- {
		h[0], h[m] = h[m], h[0]
		siftDown(h[:m], 0)
	}
	return h
}

// KthLargest returns the k-th largest value of values (1-based: k=1 is the
// maximum). It panics if k is out of range.
func KthLargest(values []float64, k int) float64 {
	if k < 1 || k > len(values) {
		panic("mat: KthLargest: k out of range")
	}
	top := TopK(values, k)
	return values[top[k-1]]
}
