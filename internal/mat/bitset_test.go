package mat

import (
	"testing"
	"testing/quick"
)

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d, want 4", b.Count())
	}
	b.Clear(64)
	if b.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	b.Reset()
	if b.Count() != 0 {
		t.Errorf("Count after Reset = %d, want 0", b.Count())
	}
}

func TestBitsetOrInto(t *testing.T) {
	a := NewBitset(70)
	b := NewBitset(70)
	a.Set(1)
	a.Set(65)
	b.Set(2)
	a.OrInto(b)
	for _, i := range []int{1, 2, 65} {
		if !b.Test(i) {
			t.Errorf("bit %d missing after OrInto", i)
		}
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	if a.Count() != 2 {
		t.Error("source bitset modified by OrInto")
	}
}

func TestBitsetPanics(t *testing.T) {
	b := NewBitset(10)
	other := NewBitset(20)
	cases := []func(){
		func() { NewBitset(-1) },
		func() { b.Set(10) },
		func() { b.Set(-1) },
		func() { b.Test(10) },
		func() { b.Clear(10) },
		func() { b.OrInto(other) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: Count equals the size of the reference set after a random
// sequence of Set/Clear operations.
func TestBitsetCountQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 200
		b := NewBitset(n)
		ref := make(map[int]bool)
		for _, op := range ops {
			i := int(op) % n
			if op%2 == 0 {
				b.Set(i)
				ref[i] = true
			} else {
				b.Clear(i)
				delete(ref, i)
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Test(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
