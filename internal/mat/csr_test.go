package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBuilderBuildBasic(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Set(0, 1, 2)
	b.Set(2, 0, -1)
	b.Add(2, 0, 2) // overwritten cell accumulates on top of Set
	b.Add(1, 3, 5)
	m := b.Build()
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = (%d, %d), want (3, 4)", r, c)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if got := m.At(0, 1); got != 2 {
		t.Errorf("At(0,1) = %v, want 2", got)
	}
	if got := m.At(2, 0); got != 1 {
		t.Errorf("At(2,0) = %v, want 1", got)
	}
	if got := m.At(1, 3); got != 5 {
		t.Errorf("At(1,3) = %v, want 5", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %v, want 0", got)
	}
}

func TestBuilderDropsExactZeros(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, -1)
	b.Set(1, 1, 3)
	m := b.Build()
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (zero-accumulated cell should be dropped)", m.NNZ())
	}
	if m.Has(0, 0) {
		t.Error("Has(0,0) = true, want false")
	}
}

func TestBuilderReuseAfterBuild(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Set(0, 0, 1)
	_ = b.Build()
	if b.Len() != 0 {
		t.Fatalf("Len after Build = %d, want 0", b.Len())
	}
	b.Set(1, 1, 2)
	m := b.Build()
	if m.NNZ() != 1 || m.At(1, 1) != 2 {
		t.Errorf("reused builder produced wrong matrix: NNZ=%d At(1,1)=%v", m.NNZ(), m.At(1, 1))
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	b := NewBuilder(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Set(2, 0, 1)
}

func TestCSRRowSortedAndShared(t *testing.T) {
	b := NewBuilder(1, 5)
	b.Set(0, 4, 4)
	b.Set(0, 1, 1)
	b.Set(0, 3, 3)
	m := b.Build()
	cols, vals := m.Row(0)
	want := []int32{1, 3, 4}
	if len(cols) != 3 {
		t.Fatalf("row has %d entries, want 3", len(cols))
	}
	for i, c := range want {
		if cols[i] != c {
			t.Errorf("cols[%d] = %d, want %d", i, cols[i], c)
		}
		if vals[i] != float64(c) {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], float64(c))
		}
	}
}

func TestNewCSRFromRows(t *testing.T) {
	m, err := NewCSRFromRows(3, 3, [][]int32{{2, 0}, {}, {1}}, nil)
	if err != nil {
		t.Fatalf("NewCSRFromRows: %v", err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	for _, c := range []struct{ i, j int }{{0, 0}, {0, 2}, {2, 1}} {
		if m.At(c.i, c.j) != 1 {
			t.Errorf("At(%d,%d) = %v, want 1", c.i, c.j, m.At(c.i, c.j))
		}
	}
	cols, _ := m.Row(0)
	if cols[0] != 0 || cols[1] != 2 {
		t.Errorf("row 0 cols = %v, want sorted [0 2]", cols)
	}
}

func TestNewCSRFromRowsErrors(t *testing.T) {
	if _, err := NewCSRFromRows(2, 2, [][]int32{{0}}, nil); err == nil {
		t.Error("expected error for wrong number of row lists")
	}
	if _, err := NewCSRFromRows(1, 2, [][]int32{{0, 0}}, nil); err == nil {
		t.Error("expected error for duplicate column")
	}
	if _, err := NewCSRFromRows(1, 2, [][]int32{{5}}, nil); err == nil {
		t.Error("expected error for out-of-range column")
	}
	if _, err := NewCSRFromRows(1, 2, [][]int32{{0}}, [][]float64{{1, 2}}); err == nil {
		t.Error("expected error for vals length mismatch")
	}
	if _, err := NewCSRFromRows(1, 2, [][]int32{{0}}, [][]float64{}); err == nil {
		t.Error("expected error for wrong number of value lists")
	}
}

func TestCSRTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	b := NewBuilder(7, 5)
	for n := 0; n < 15; n++ {
		b.Set(rng.IntN(7), rng.IntN(5), rng.Float64()*10-5)
	}
	m := b.Build()
	tt := m.Transpose().Transpose()
	if !m.Dense().Equal(tt.Dense(), 0) {
		t.Error("Transpose twice does not round-trip")
	}
	tr := m.Transpose()
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("At(%d,%d)=%v but transpose At(%d,%d)=%v", i, j, m.At(i, j), j, i, tr.At(j, i))
			}
		}
	}
}

func TestCSRMulVecAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	b := NewBuilder(6, 4)
	for n := 0; n < 12; n++ {
		b.Set(rng.IntN(6), rng.IntN(4), rng.Float64())
	}
	m := b.Build()
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.Float64()
	}
	got := m.MulVec(nil, x)
	d := m.Dense()
	for i := 0; i < 6; i++ {
		want := Dot(d.Row(i), x)
		if math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want)
		}
	}
	// Reuse destination.
	dst := make([]float64, 6)
	got2 := m.MulVec(dst, x)
	if &got2[0] != &dst[0] {
		t.Error("MulVec did not reuse dst")
	}
}

func TestCSRMulVecShapePanics(t *testing.T) {
	m := NewBuilder(2, 3).Build()
	for i, f := range []func(){
		func() { m.MulVec(nil, make([]float64, 2)) },
		func() { m.MulVec(make([]float64, 3), make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCSRDensityRowNNZRowSum(t *testing.T) {
	b := NewBuilder(2, 4)
	b.Set(0, 0, 1)
	b.Set(0, 3, 2)
	m := b.Build()
	if got := m.Density(); got != 0.25 {
		t.Errorf("Density = %v, want 0.25", got)
	}
	if got := m.RowNNZ(0); got != 2 {
		t.Errorf("RowNNZ(0) = %d, want 2", got)
	}
	if got := m.RowNNZ(1); got != 0 {
		t.Errorf("RowNNZ(1) = %d, want 0", got)
	}
	if got := m.RowSum(0); got != 3 {
		t.Errorf("RowSum(0) = %v, want 3", got)
	}
	empty := NewBuilder(0, 0).Build()
	if empty.Density() != 0 {
		t.Errorf("empty Density = %v, want 0", empty.Density())
	}
}

// Property: building a CSR from random cells then reading every cell back
// reproduces the reference map exactly.
func TestCSRRoundTripQuick(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		rows, cols := 1+rng.IntN(10), 1+rng.IntN(10)
		ref := make(map[[2]int]float64)
		b := NewBuilder(rows, cols)
		for k := 0; k < int(n); k++ {
			i, j := rng.IntN(rows), rng.IntN(cols)
			v := rng.Float64()*2 - 1
			b.Set(i, j, v)
			if v == 0 {
				delete(ref, [2]int{i, j})
			} else {
				ref[[2]int{i, j}] = v
			}
		}
		m := b.Build()
		if m.NNZ() != len(ref) {
			return false
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if m.At(i, j) != ref[[2]int{i, j}] {
					return false
				}
				if m.Has(i, j) != (ref[[2]int{i, j}] != 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: transpose preserves NNZ and swaps row/col sums.
func TestCSRTransposeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		rows, cols := 1+rng.IntN(8), 1+rng.IntN(8)
		b := NewBuilder(rows, cols)
		for k := 0; k < rng.IntN(20); k++ {
			b.Set(rng.IntN(rows), rng.IntN(cols), 1+rng.Float64())
		}
		m := b.Build()
		tr := m.Transpose()
		if tr.NNZ() != m.NNZ() {
			return false
		}
		for i := 0; i < rows; i++ {
			var colSumOfTr float64
			for j := 0; j < cols; j++ {
				colSumOfTr += tr.At(j, i)
			}
			if math.Abs(colSumOfTr-m.RowSum(i)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
