package mat

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

// refTopK is the O(n log n) reference implementation.
func refTopK(values []float64, k int) []int {
	if k <= 0 {
		return nil
	}
	if k > len(values) {
		k = len(values)
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := values[idx[a]], values[idx[b]]
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

func TestTopKBasic(t *testing.T) {
	values := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	got := TopK(values, 3)
	want := []int{5, 7, 4} // 9, 6, 5
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TopK[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestTopKTiesDeterministic(t *testing.T) {
	values := []float64{2, 2, 2, 2, 2}
	got := TopK(values, 3)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TopK[%d] = %d, want %d (smaller index wins ties)", i, got[i], want[i])
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if got := TopK([]float64{1, 2}, 0); got != nil {
		t.Errorf("k=0: got %v, want nil", got)
	}
	if got := TopK([]float64{1, 2}, -3); got != nil {
		t.Errorf("k<0: got %v, want nil", got)
	}
	if got := TopK(nil, 5); got != nil {
		t.Errorf("empty values: got %v, want nil", got)
	}
	got := TopK([]float64{1, 3, 2}, 10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Errorf("k>n: got %v, want [1 2 0]", got)
	}
	one := TopK([]float64{7}, 1)
	if len(one) != 1 || one[0] != 0 {
		t.Errorf("single element: got %v, want [0]", one)
	}
}

func TestTopKTwoElements(t *testing.T) {
	// Regression guard for the 2-element partition edge case.
	for _, c := range []struct {
		values []float64
		want   []int
	}{
		{[]float64{1, 2}, []int{1}},
		{[]float64{2, 1}, []int{0}},
		{[]float64{2, 2}, []int{0}},
	} {
		got := TopK(c.values, 1)
		if len(got) != 1 || got[0] != c.want[0] {
			t.Errorf("TopK(%v, 1) = %v, want %v", c.values, got, c.want)
		}
	}
}

func TestTopKSetMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	values := make([]float64, 100)
	for i := range values {
		values[i] = rng.Float64()
	}
	for _, k := range []int{0, 1, 5, 50, 99, 100, 150} {
		set := TopKSet(values, k)
		top := TopK(values, k)
		count := 0
		for _, in := range set {
			if in {
				count++
			}
		}
		wantCount := k
		if wantCount > len(values) {
			wantCount = len(values)
		}
		if wantCount < 0 {
			wantCount = 0
		}
		if count != wantCount {
			t.Errorf("k=%d: TopKSet selected %d, want %d", k, count, wantCount)
		}
		for _, i := range top {
			if !set[i] {
				t.Errorf("k=%d: index %d in TopK but not TopKSet", k, i)
			}
		}
	}
}

func TestKthLargest(t *testing.T) {
	values := []float64{3, 1, 4, 1, 5}
	for k, want := range map[int]float64{1: 5, 2: 4, 3: 3, 4: 1, 5: 1} {
		if got := KthLargest(values, k); got != want {
			t.Errorf("KthLargest(k=%d) = %v, want %v", k, got, want)
		}
	}
}

func TestKthLargestPanics(t *testing.T) {
	for _, k := range []int{0, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			KthLargest([]float64{1, 2, 3, 4, 5}, k)
		}()
	}
}

// Property: TopK matches the sort-based reference on random inputs with
// many duplicate values (stress for tie handling and the partition).
func TestTopKQuick(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 1 + rng.IntN(200)
		values := make([]float64, n)
		for i := range values {
			values[i] = float64(rng.IntN(8)) // heavy ties
		}
		k := int(kRaw) % (n + 2)
		got := TopK(values, k)
		want := refTopK(values, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every selected value is >= every unselected value.
func TestTopKSetBoundaryQuick(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 123))
		n := 1 + rng.IntN(100)
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64()
		}
		k := int(kRaw) % n
		set := TopKSet(values, k)
		minIn, maxOut := 2.0, -1.0
		for i, in := range set {
			if in && values[i] < minIn {
				minIn = values[i]
			}
			if !in && values[i] > maxOut {
				maxOut = values[i]
			}
		}
		return k == 0 || minIn >= maxOut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopKHeapBasic(t *testing.T) {
	values := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	got := TopKHeap(values, 3)
	want := []int{5, 7, 4} // 9, 6, 5
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TopKHeap[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestTopKHeapEdgeCases(t *testing.T) {
	if got := TopKHeap([]float64{1, 2}, 0); got != nil {
		t.Errorf("k=0: got %v, want nil", got)
	}
	if got := TopKHeap([]float64{1, 2}, -3); got != nil {
		t.Errorf("k<0: got %v, want nil", got)
	}
	if got := TopKHeap(nil, 5); got != nil {
		t.Errorf("empty values: got %v, want nil", got)
	}
	got := TopKHeap([]float64{1, 3, 2}, 10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Errorf("k>n: got %v, want [1 2 0]", got)
	}
	ties := TopKHeap([]float64{2, 2, 2, 2, 2}, 3)
	for i, want := range []int{0, 1, 2} {
		if ties[i] != want {
			t.Errorf("ties[%d] = %d, want %d (smaller index wins)", i, ties[i], want)
		}
	}
}

// TestTopKHeapIntoReusesScratch asserts the scratch contract: a dst with
// enough capacity is reused (the steady-state query path allocates
// nothing), and a too-small dst is replaced, not overrun.
func TestTopKHeapIntoReusesScratch(t *testing.T) {
	values := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	scratch := make([]int, 0, 8)
	got := TopKHeapInto(values, 3, scratch)
	if &got[0] != &scratch[:1][0] {
		t.Error("dst with capacity was not reused")
	}
	small := make([]int, 0, 1)
	got = TopKHeapInto(values, 3, small)
	if len(got) != 3 {
		t.Fatalf("small dst: len = %d, want 3", len(got))
	}
	allocs := testing.AllocsPerRun(100, func() {
		scratch = TopKHeapInto(values, 3, scratch)
	})
	if allocs != 0 {
		t.Errorf("TopKHeapInto with scratch allocated %.1f times per run", allocs)
	}
}

// Property (ISSUE 3 satellite): TopKHeap returns exactly TopK's order —
// descending score, ties by ascending id — on random inputs with heavy
// duplication, across the full k range including k=0, k=n and k>n.
func TestTopKHeapMatchesTopKQuick(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		n := 1 + rng.IntN(200)
		values := make([]float64, n)
		for i := range values {
			values[i] = float64(rng.IntN(8)) // heavy ties
		}
		k := int(kRaw) % (n + 2)
		got := TopKHeapInto(values, k, make([]int, 0, 4))
		want := TopK(values, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	values := make([]float64, 10000)
	for i := range values {
		values[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(values, 100)
	}
}

func BenchmarkTopKSet(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	values := make([]float64, 10000)
	for i := range values {
		values[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKSet(values, 100)
	}
}
