// Package mat provides the small numeric substrate the trust framework is
// built on: flat row-major dense matrices, CSR sparse matrices with a
// dictionary-of-keys builder, and top-k selection.
//
// Go's standard library has no numeric matrix support, and this project is
// stdlib-only, so the handful of operations the paper's pipeline needs are
// implemented here directly. All types use contiguous backing slices for
// cache-friendly row iteration, which is the dominant access pattern in the
// pipeline (derived-trust rows are computed one user at a time).
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when matrix dimensions do not line up for an
// operation or a constructor receives non-positive dimensions.
var ErrShape = errors.New("mat: dimension mismatch")

// Dense is a dense matrix stored in row-major order. The zero value is an
// empty 0x0 matrix. Dense is not safe for concurrent mutation; concurrent
// reads are safe.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense creates a rows x cols matrix of zeros. It panics if either
// dimension is negative.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: NewDense(%d, %d): negative dimension", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData creates a rows x cols matrix backed by data, which must have
// exactly rows*cols elements. The matrix takes ownership of the slice.
func NewDenseData(rows, cols int, data []float64) (*Dense, error) {
	if rows < 0 || cols < 0 || len(data) != rows*cols {
		return nil, fmt.Errorf("%w: %d x %d with %d elements", ErrShape, rows, cols, len(data))
	}
	return &Dense{rows: rows, cols: cols, data: data}, nil
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d, %d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice sharing the matrix's backing storage.
// Mutating the returned slice mutates the matrix.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// RowSum returns the sum of row i.
func (m *Dense) RowSum(i int) float64 {
	var s float64
	for _, v := range m.Row(i) {
		s += v
	}
	return s
}

// RowMax returns the maximum value in row i, or 0 if the matrix has no
// columns.
func (m *Dense) RowMax(i int) float64 {
	row := m.Row(i)
	if len(row) == 0 {
		return 0
	}
	max := row[0]
	for _, v := range row[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// ScaleRow multiplies every element of row i by f.
func (m *Dense) ScaleRow(i int, f float64) {
	row := m.Row(i)
	for k := range row {
		row[k] *= f
	}
}

// NNZ returns the number of non-zero elements.
func (m *Dense) NNZ() int {
	n := 0
	for _, v := range m.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Density returns NNZ divided by the total number of cells, or 0 for an
// empty matrix.
func (m *Dense) Density() float64 {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.rows*m.cols)
}

// Equal reports whether m and n have the same shape and all elements are
// within tol of each other.
func (m *Dense) Equal(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and n. It panics if shapes differ.
func (m *Dense) MaxAbsDiff(n *Dense) float64 {
	if m.rows != n.rows || m.cols != n.cols {
		panic("mat: MaxAbsDiff shape mismatch")
	}
	var max float64
	for i, v := range m.data {
		if d := math.Abs(v - n.data[i]); d > max {
			max = d
		}
	}
	return max
}

// Dot returns the dot product of equal-length vectors a and b. It panics if
// the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Sum returns the sum of the elements of a.
func Sum(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}

// Scale multiplies every element of a by f in place.
func Scale(a []float64, f float64) {
	for i := range a {
		a[i] *= f
	}
}

// Normalize1 scales a in place so it sums to 1 and reports whether it could
// (a zero vector is left unchanged and false is returned).
func Normalize1(a []float64) bool {
	s := Sum(a)
	if s == 0 {
		return false
	}
	Scale(a, 1/s)
	return true
}
