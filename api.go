package weboftrust

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"weboftrust/internal/affinity"
	"weboftrust/internal/core"
	"weboftrust/internal/graph"
	"weboftrust/internal/propagation"
	"weboftrust/internal/ratings"
	"weboftrust/internal/shard"
)

// UserID identifies a community member; it aliases the data model's id
// type so facade results interoperate with the internal packages.
type UserID = ratings.UserID

// Dataset is the review-community input; build one with a
// ratings.Builder, a store reader, or the synth generator.
type Dataset = ratings.Dataset

// Ranked pairs a user with a derived trust score.
type Ranked = core.Ranked

// Web is the binarised web of trust derived from the continuous matrix:
// the paper's end product, carried as a pipeline artifact (generosity
// vector, per-user edge rows, CSR graph form) and maintained
// incrementally through Update.
type Web = core.Web

// Option customises Derive.
type Option func(*core.Config) error

// WithRiggsIterations caps the Step 1 fixed-point iterations.
func WithRiggsIterations(n int) Option {
	return func(c *core.Config) error {
		if n < 1 {
			return fmt.Errorf("weboftrust: iterations %d < 1", n)
		}
		c.Riggs.MaxIter = n
		return nil
	}
}

// WithoutExperienceDiscount disables the (1 − 1/(n+1)) inexperience
// discount in both reputation models (eqs. 2-3).
func WithoutExperienceDiscount() Option {
	return func(c *core.Config) error {
		c.Riggs.DiscountExperience = false
		c.Reputation.DiscountExperience = false
		return nil
	}
}

// WithUnratedQuality sets the quality assigned to reviews nobody rated
// (default 0).
func WithUnratedQuality(q float64) Option {
	return func(c *core.Config) error {
		if q < 0 || q > 1 {
			return fmt.Errorf("weboftrust: unrated quality %v outside [0,1]", q)
		}
		c.Riggs.UnratedQuality = q
		return nil
	}
}

// WithAffinityRatingsOnly derives affinity from rating activity alone.
func WithAffinityRatingsOnly() Option {
	return func(c *core.Config) error {
		c.AffinityMode = affinity.RatingsOnly
		return nil
	}
}

// WithAffinityWritesOnly derives affinity from writing activity alone.
func WithAffinityWritesOnly() Option {
	return func(c *core.Config) error {
		c.AffinityMode = affinity.WritesOnly
		return nil
	}
}

// WithWebThreshold switches the web-of-trust binarisation from the
// paper's per-user top-k-generosity protocol to a global threshold:
// predict a trust edge wherever T̂_ij >= tau (the A-4 ablation policy).
// The policy shapes only the graph artifact — continuous scores, top-k
// rankings and checkpoints are unaffected, and the policy is excluded
// from the configuration fingerprint.
func WithWebThreshold(tau float64) Option {
	return func(c *core.Config) error {
		if tau < 0 || tau > 1 {
			return fmt.Errorf("weboftrust: web threshold %v outside [0,1]", tau)
		}
		c.Web.Policy = core.GlobalThreshold
		c.Web.Tau = tau
		return nil
	}
}

// WithWebColdStartGenerosity sets the generosity used to binarise users
// whose own history cannot calibrate one (k_i = 0: no direct connections,
// or none carrying explicit trust). The paper's protocol gives such users
// no out-edges at all; a positive fallback lets the web serve exactly the
// cold-start users the framework exists for. Applies to the per-user
// top-k policy only.
func WithWebColdStartGenerosity(k float64) Option {
	return func(c *core.Config) error {
		if k < 0 || k > 1 {
			return fmt.Errorf("weboftrust: cold-start generosity %v outside [0,1]", k)
		}
		c.Web.ColdGenerosity = k
		return nil
	}
}

// WithPropagatePruneTau maintains a percolation-pruned companion of the
// web-of-trust graph — every edge whose T̂ weight falls below tau is
// dropped — and routes the propagation queries (PropagateInto, Propagate)
// over it. Trust transitivity undergoes a percolation transition
// (Richters & Peixoto): sub-threshold edges cannot carry trust through a
// chain, so pruning them trades a small, bounded score error for a
// proportionally smaller traversal. The web artifact itself — rows,
// generosity, neighbor queries, the complete graph — is unchanged, and
// PropagateExactInto always traverses the complete graph. tau 0 (the
// default) disables pruning: propagation is exact. Like the rest of the
// web policy, the knob is excluded from the configuration fingerprint.
func WithPropagatePruneTau(tau float64) Option {
	return func(c *core.Config) error {
		if math.IsNaN(tau) || tau < 0 || tau > 1 {
			return fmt.Errorf("weboftrust: propagate prune tau %v outside [0,1]", tau)
		}
		c.Web.PruneTau = tau
		return nil
	}
}

// WithPropagateMaxDepth truncates the propagation traversals
// (PropagateInto, Propagate) to the BFS depth-ball of radius d around
// the source — the depth half of the truncated-walk approximation.
// Trust mass decays multiplicatively along a chain (Richters &
// Peixoto), so mass that must travel beyond a short horizon cannot move
// a ranking, and a traversal that never visits it trades a small,
// test-pinned score error for a proportionally smaller walk. Each
// algorithm composes the bound with its own horizon (the tighter wins);
// PropagateExactInto always ignores it. d 0 (the default) disables the
// bound. Like the rest of the web policy, the knob is excluded from the
// configuration fingerprint.
func WithPropagateMaxDepth(d int) Option {
	return func(c *core.Config) error {
		if d < 0 {
			return fmt.Errorf("weboftrust: propagate max depth %d < 0", d)
		}
		c.Web.WalkDepth = d
		return nil
	}
}

// WithPropagateMassEps drops propagation walk tails whose carried trust
// mass has decayed to eps or below — the mass half of the truncated
// walk: Appleseed stops spreading parcels that weak, MoleTrust and
// TidalTrust floor predicted values at or below it to zero.
// PropagateExactInto always ignores it. eps 0 (the default) disables
// the bound. Excluded from the configuration fingerprint.
func WithPropagateMassEps(eps float64) Option {
	return func(c *core.Config) error {
		if math.IsNaN(eps) || eps < 0 {
			return fmt.Errorf("weboftrust: propagate mass eps %v invalid", eps)
		}
		c.Web.WalkMassEps = eps
		return nil
	}
}

// WithShard makes the model shard index of count in an N-way
// shard-by-source deployment: the pipeline still computes the complete
// model (global artifacts and the replicated web graph need every user's
// events), but dense per-source state — affinity rows, web edge rows —
// is retained only for the users the shard owns under the consistent
// hash, cutting steady-state memory to ~1/count. Owned sources are
// answered bitwise-identically to an unsharded model; unowned sources
// panic at the dense accessors, so serving layers must route by
// ownership (see ShardSpec/Owns and the internal/router package). Like
// WithWorkers, the spec is excluded from the configuration fingerprint:
// it changes what is kept, never what is computed.
func WithShard(index, count int) Option {
	return func(c *core.Config) error {
		sp := shard.Spec{Index: index, Count: count}
		if count < 1 {
			return fmt.Errorf("weboftrust: shard count %d < 1", count)
		}
		if err := sp.Validate(); err != nil {
			return fmt.Errorf("weboftrust: %w", err)
		}
		c.Shard = sp
		return nil
	}
}

// WithWorkers caps the goroutines the pipeline fans out to; 0 (the
// default) means one per available CPU and 1 forces serial execution.
// Every stage shards independent work items, so the derived model is
// bitwise-identical at any setting — the knob only trades wall-clock
// time. Update inherits the setting.
func WithWorkers(n int) Option {
	return func(c *core.Config) error {
		if n < 0 {
			return fmt.Errorf("weboftrust: workers %d < 0", n)
		}
		c.Workers = n
		return nil
	}
}

// TrustModel is the derived web of trust for one dataset: a thin,
// query-oriented wrapper around the pipeline's artifacts. It is immutable
// and safe for concurrent use.
type TrustModel struct {
	cfg       core.Config
	dataset   *ratings.Dataset
	artifacts *core.Artifacts
	// id is a process-unique identity for this model; parentID links an
	// Update result to the model it was incrementally derived from (0 for
	// models built or restored from scratch). Serving layers use the pair
	// to decide whether delta-aware state (cache carry-over, warm-started
	// rank vectors) may migrate across an atomic swap.
	id       uint64
	parentID uint64
	// scratch carries the reusable Update buffers down the chain of
	// models an ingest loop produces; core.Scratch serialises concurrent
	// use internally.
	scratch *core.Scratch
	// webOnce/webLazy back WebOfTrust for restored models, whose
	// artifacts deliberately arrive without the graph (see Restore): the
	// first graph consumer — a propagation query, or the first
	// incremental update — builds it exactly once, off the
	// time-to-serving path. webLazy is atomic so non-forcing observers
	// (WebOfTrustBuilt) can peek without joining the Once. Models
	// produced by Derive/Update carry the graph in artifacts and never
	// touch these.
	webOnce sync.Once
	webLazy atomic.Pointer[core.Web]
}

// Derive runs the full three-step pipeline over the dataset.
func Derive(d *Dataset, opts ...Option) (*TrustModel, error) {
	cfg, err := resolveConfig(opts)
	if err != nil {
		return nil, err
	}
	art, err := cfg.Run(d)
	if err != nil {
		return nil, err
	}
	return &TrustModel{cfg: cfg, dataset: d, artifacts: art, scratch: new(core.Scratch), id: nextModelID()}, nil
}

// modelIDs hands out process-unique model identities; 0 is reserved for
// "no parent".
var modelIDs atomic.Uint64

func nextModelID() uint64 { return modelIDs.Add(1) }

func resolveConfig(opts []Option) (core.Config, error) {
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// ResolveConfig applies the options to the default configuration and
// returns the result — how persistence layers learn what a Derive with
// the same opts would be configured as (the shard spec a checkpoint must
// match, the web policy a sharded bundle was graphed under) without
// running the pipeline.
func ResolveConfig(opts ...Option) (core.Config, error) {
	return resolveConfig(opts)
}

// Fingerprint returns the configuration fingerprint Derive(…, opts...)
// would stamp on its model: a stable hash of every option that affects
// derived values (worker count excluded — results are bitwise-identical at
// any parallelism). Persistence layers record it so a checkpoint written
// under one configuration is never restored under another.
func Fingerprint(opts ...Option) (uint64, error) {
	cfg, err := resolveConfig(opts)
	if err != nil {
		return 0, err
	}
	return cfg.Fingerprint(), nil
}

// Restore reassembles a TrustModel from persisted pipeline artifacts — the
// warm-restart path. art must carry the Riggs results and the expertise
// and affinity matrices for d exactly as a Derive with the same opts
// produced them; the derived-trust index is rebuilt deterministically from
// those matrices (see core.RehydrateArtifacts), so the restored model
// serves values bitwise-identical to the Derive it checkpoints, and
// Update continues from it exactly as it would from the original.
func Restore(d *Dataset, art *core.Artifacts, opts ...Option) (*TrustModel, error) {
	if d == nil || art == nil {
		return nil, fmt.Errorf("weboftrust: Restore requires a dataset and artifacts")
	}
	cfg, err := resolveConfig(opts)
	if err != nil {
		return nil, err
	}
	if art.Expertise == nil || art.Expertise.Rows() != d.NumUsers() || art.Expertise.Cols() != d.NumCategories() {
		return nil, fmt.Errorf("weboftrust: Restore artifacts do not match dataset %v", d)
	}
	// Fail fast on an unbuildable web policy: the graph itself is
	// rebuilt lazily (WebOfTrust), off the time-to-serving path, and
	// that build must not be able to fail.
	if err := cfg.Web.Validate(); err != nil {
		return nil, fmt.Errorf("weboftrust: Restore: %w", err)
	}
	if art.Trust == nil {
		if cfg.Shard.IsSharded() {
			// A sharded model's web graph cannot be rebuilt from its
			// compact affinity matrix; per-shard checkpoints persist the
			// graph and hand Restore fully rehydrated artifacts.
			return nil, fmt.Errorf("weboftrust: Restore: sharded restore requires rehydrated artifacts (see core.RehydrateShardedArtifacts)")
		}
		rebuilt, err := core.RehydrateArtifacts(art.RiggsResults, art.Expertise, art.Affinity, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("weboftrust: Restore: %w", err)
		}
		art = rebuilt
	} else if got, want := art.Trust.ShardSpec(), cfg.Shard.Canon(); got != want {
		return nil, fmt.Errorf("weboftrust: Restore: artifacts are shard %v, configuration says %v", got, want)
	}
	return &TrustModel{cfg: cfg, dataset: d, artifacts: art, scratch: new(core.Scratch), id: nextModelID()}, nil
}

// Update derives a new model for a dataset that extends this model's —
// the shape produced by replaying an append-only event log past the
// position this model was built from. It re-solves the Step 1 fixed point
// only for categories touched by the new activity and reuses the rest —
// including the web-of-trust graph, whose edge rows are re-selected only
// for users whose inputs changed and shared by reference otherwise — so
// it is much cheaper than Derive on the grown dataset while producing
// exactly the same model (it keeps the options Derive was called with).
// The receiver is unchanged and remains valid: readers can keep querying
// it while the replacement is prepared, then swap atomically.
func (m *TrustModel) Update(newD *Dataset) (*TrustModel, error) {
	art := m.artifacts
	if art.Web == nil {
		// A restored model defers its graph build to here (or to the
		// first graph query): materialise it so the incremental web
		// maintenance has a predecessor to share rows with.
		web := m.WebOfTrust()
		cp := *art
		cp.Web = web
		art = &cp
	}
	art, err := m.cfg.UpdateScratch(art, m.dataset, newD, m.scratch)
	if err != nil {
		return nil, err
	}
	return &TrustModel{cfg: m.cfg, dataset: newD, artifacts: art, scratch: m.scratch, id: nextModelID(), parentID: m.id}, nil
}

// ID returns this model's process-unique identity.
func (m *TrustModel) ID() uint64 { return m.id }

// ParentID returns the identity of the model this one was incrementally
// updated from, or 0 when it was derived or restored from scratch.
func (m *TrustModel) ParentID() uint64 { return m.parentID }

// DirtyUsers returns, for a model produced by Update, the conservative
// set of users whose derived web row (and so any per-source result) may
// differ from the parent model's; users not marked are provably
// unchanged — their rows are shared with the parent by reference. It
// returns nil for models with no parent. The slice is shared; do not
// modify it.
func (m *TrustModel) DirtyUsers() []bool {
	if web, ok := m.WebOfTrustBuilt(); ok {
		return web.DirtyUsers()
	}
	return nil
}

// Score returns the degree of trust T̂_ij user i holds for user j, in
// [0, 1]. Zero means no overlap between i's interests and j's expertise.
// Single cells are evaluated through the expert-score index (one binary
// search per interest) when i's affinity is narrow relative to the
// category count, and through the dense eq. 5 dot otherwise; both routes
// return the identical value.
func (m *TrustModel) Score(i, j UserID) float64 {
	return m.artifacts.Trust.Value(i, j)
}

// TopTrusted returns the k users with the highest derived trust from user
// u's point of view, best first, excluding u and zero scores. The row is
// evaluated through the sparse expert-score index when u's interests are
// narrow, and ranked with a bounded heap (O(U log k), O(k) working
// memory), so the cost tracks the community's sparsity rather than U·C.
func (m *TrustModel) TopTrusted(u UserID, k int) []Ranked {
	return m.artifacts.Trust.TopTrusted(u, k)
}

// Expertise returns user u's reputation in every category, indexed by
// CategoryID. The returned slice is shared; do not modify it.
func (m *TrustModel) Expertise(u UserID) []float64 {
	return m.artifacts.Expertise.Row(int(u))
}

// Affinity returns user u's affiliation with every category, indexed by
// CategoryID. The returned slice is shared; do not modify it. On a
// sharded model it panics for sources the shard does not own.
func (m *TrustModel) Affinity(u UserID) []float64 {
	return m.artifacts.Trust.AffinityRow(u)
}

// ShardSpec returns this model's slice of the shard-by-source
// deployment: (0, 1) for an unsharded model.
func (m *TrustModel) ShardSpec() (index, count int) {
	sp := m.artifacts.Trust.ShardSpec()
	return sp.Index, sp.Count
}

// Owns reports whether this model holds user u's dense per-source state
// — whether u is a source it can answer trust queries for. Always true
// on an unsharded model.
func (m *TrustModel) Owns(u UserID) bool {
	return m.artifacts.Trust.Owns(u)
}

// ReviewQuality returns the converged quality of a review (eq. 1) and
// whether the review exists.
func (m *TrustModel) ReviewQuality(r ratings.ReviewID) (float64, bool) {
	if int(r) < 0 || int(r) >= m.dataset.NumReviews() {
		return 0, false
	}
	rev := m.dataset.Review(r)
	return m.artifacts.RiggsResults[rev.Category].QualityOf(r)
}

// RaterReputation returns user u's rater reputation in category c (eq. 2)
// and whether u rated anything there.
func (m *TrustModel) RaterReputation(u UserID, c ratings.CategoryID) (float64, bool) {
	if int(c) < 0 || int(c) >= len(m.artifacts.RiggsResults) {
		return 0, false
	}
	return m.artifacts.RiggsResults[c].ReputationOf(u)
}

// Dataset returns the dataset the model was derived from.
func (m *TrustModel) Dataset() *Dataset { return m.dataset }

// Fingerprint returns the configuration fingerprint of the options this
// model was derived (or restored) with; see the package-level Fingerprint.
func (m *TrustModel) Fingerprint() uint64 { return m.cfg.Fingerprint() }

// Artifacts exposes the underlying pipeline artifacts for advanced use
// (binarisation, evaluation, propagation).
func (m *TrustModel) Artifacts() *core.Artifacts { return m.artifacts }

// WebOfTrust returns the binarised web-of-trust artifact: the graph the
// propagation queries traverse. It is immutable and safe for concurrent
// use; Update produces a successor web sharing untouched users' rows.
// Models produced by Derive or Update carry the graph from the pipeline;
// a restored model builds it here exactly once, on first use (the build
// is deterministic, so the result is identical to the eager one —
// pinned by the checkpoint round-trip tests).
func (m *TrustModel) WebOfTrust() *Web {
	if m.artifacts.Web != nil {
		return m.artifacts.Web
	}
	m.webOnce.Do(func() {
		web, err := core.BuildWeb(m.dataset, m.artifacts.Trust, m.cfg.Web, m.cfg.Workers)
		if err != nil {
			// Restore validated the policy and the artifacts' shapes;
			// nothing recoverable can fail here.
			panic(fmt.Sprintf("weboftrust: lazy web build: %v", err))
		}
		m.webLazy.Store(web)
	})
	return m.webLazy.Load()
}

// WebOfTrustBuilt returns the web artifact only if it already exists —
// built eagerly by the pipeline or lazily by an earlier graph consumer —
// without triggering the deferred build. Observability surfaces use it
// so a metrics scrape against a freshly restored model stays O(1)
// instead of paying the full binarisation.
func (m *TrustModel) WebOfTrustBuilt() (*Web, bool) {
	if m.artifacts.Web != nil {
		return m.artifacts.Web, true
	}
	if web := m.webLazy.Load(); web != nil {
		return web, true
	}
	return nil, false
}

// Neighbors returns user u's out-edges in the web of trust — the users u
// is predicted to trust — in ascending user-id order, each carrying its
// continuous T̂ weight.
func (m *TrustModel) Neighbors(u UserID) []Ranked {
	to, w := m.WebOfTrust().Neighbors(u)
	out := make([]Ranked, len(to))
	for i, j := range to {
		out[i] = Ranked{User: ratings.UserID(j), Score: w[i]}
	}
	return out
}

// PropagationAlgo selects a personalised trust-propagation algorithm for
// Propagate: the trust-transitivity query class the related work studies
// over explicit webs, served here over the derived web.
type PropagationAlgo int

const (
	// PropagateAppleseed spreads activation energy from the source
	// (Ziegler & Lausen); scores are retained energies, useful as a
	// ranking rather than absolute trust values.
	PropagateAppleseed PropagationAlgo = iota
	// PropagateMoleTrust runs Massa & Avesani's horizon-bounded
	// trust-weighted average over the BFS distance DAG; scores are in
	// [0, 1].
	PropagateMoleTrust
	// PropagateTidalTrust runs Golbeck's shortest-path threshold
	// inference to every reachable sink; scores are in [0, 1].
	PropagateTidalTrust
)

// propagateDepth caps the search horizon of the path-bounded algorithms
// (MoleTrust's own default horizon is 3; TidalTrust uses the experiment
// suite's depth).
const propagateDepth = 4

// String returns the algorithm's wire name, as accepted by
// ParsePropagationAlgo and the /v1/propagate endpoint.
func (a PropagationAlgo) String() string {
	switch a {
	case PropagateAppleseed:
		return "appleseed"
	case PropagateMoleTrust:
		return "moletrust"
	case PropagateTidalTrust:
		return "tidaltrust"
	default:
		return fmt.Sprintf("PropagationAlgo(%d)", int(a))
	}
}

// ParsePropagationAlgo maps a wire name ("appleseed", "moletrust",
// "tidaltrust"; case-insensitive) to its algorithm.
func ParsePropagationAlgo(s string) (PropagationAlgo, error) {
	switch strings.ToLower(s) {
	case "appleseed":
		return PropagateAppleseed, nil
	case "moletrust":
		return PropagateMoleTrust, nil
	case "tidaltrust":
		return PropagateTidalTrust, nil
	default:
		return 0, fmt.Errorf("weboftrust: unknown propagation algorithm %q (appleseed, moletrust, tidaltrust)", s)
	}
}

// PropagateInto fills dst (length U) with algo's personalised trust ranks
// from source's viewpoint over the web of trust, with the source's own
// entry zeroed (it does not rank itself). Every entry of dst is
// overwritten, so serving layers can hand in pooled, dirty buffers. The
// result is deterministic for a given model and algorithm. Under
// WithPropagatePruneTau the traversal runs over the percolation-pruned
// companion graph, and under WithPropagateMaxDepth /
// WithPropagateMassEps it is additionally truncated (both bounded
// approximations); otherwise — and always via PropagateExactInto — it
// runs complete and exact.
func (m *TrustModel) PropagateInto(algo PropagationAlgo, source UserID, dst []float64) error {
	return m.propagateOnto(m.WebOfTrust().PropagationGraph(), algo, source, m.truncation(), dst)
}

// PropagateExactInto is PropagateInto over the complete web graph with
// no truncation, regardless of any pruning or truncated-walk policy —
// the exact-mode fallback, and the reference every approximation's
// error bound is measured against.
func (m *TrustModel) PropagateExactInto(algo PropagationAlgo, source UserID, dst []float64) error {
	return m.propagateOnto(m.WebOfTrust().Graph(), algo, source, propagation.Truncate{}, dst)
}

// truncation returns the walk truncation the model's policy configures
// for the approximate propagation path (the zero value when disabled).
func (m *TrustModel) truncation() propagation.Truncate {
	return propagation.Truncate{MaxDepth: m.cfg.Web.WalkDepth, MassEps: m.cfg.Web.WalkMassEps}
}

func (m *TrustModel) propagateOnto(g *graph.Graph, algo PropagationAlgo, source UserID, tr propagation.Truncate, dst []float64) error {
	numU := m.dataset.NumUsers()
	if len(dst) != numU {
		return fmt.Errorf("weboftrust: PropagateInto dst length %d, want %d", len(dst), numU)
	}
	if int(source) < 0 || int(source) >= numU {
		return fmt.Errorf("weboftrust: propagate source %d out of range (%d users)", source, numU)
	}
	switch algo {
	case PropagateAppleseed:
		ranks, err := propagation.DefaultAppleseed().RankTruncated(g, int(source), tr)
		if err != nil {
			return err
		}
		copy(dst, ranks)
	case PropagateMoleTrust:
		ranks, err := propagation.DefaultMoleTrust().RankTruncated(g, int(source), tr)
		if err != nil {
			return err
		}
		copy(dst, ranks)
	case PropagateTidalTrust:
		res := propagation.TidalTrust{MaxDepth: propagateDepth}.InferAllTruncated(g, int(source), tr)
		for j, r := range res {
			if r.OK && r.Value > 0 {
				dst[j] = r.Value
			} else {
				dst[j] = 0
			}
		}
	default:
		return fmt.Errorf("weboftrust: unknown propagation algorithm %d", int(algo))
	}
	dst[source] = 0
	return nil
}

// Propagate returns the k highest-ranked users from source's viewpoint
// under algo, best first (ties by ascending user id), excluding the
// source and zero scores. Where TopTrusted ranks the continuous one-hop
// matrix, Propagate ranks multi-hop transitive trust over the binarised
// web — the "web of trust propagation" the paper proposes as the
// framework's payoff.
func (m *TrustModel) Propagate(algo PropagationAlgo, source UserID, k int) ([]Ranked, error) {
	dst := make([]float64, m.dataset.NumUsers())
	if err := m.PropagateInto(algo, source, dst); err != nil {
		return nil, err
	}
	return core.RankRow(dst, k), nil
}

// GlobalRanks computes the EigenTrust global trust vector over the
// complete web graph (never the pruned companion), run to convergence —
// the cold path a serving layer takes when it has no predecessor vector.
// It reports the power iterations used. The vector is a probability
// distribution: scores sum to 1.
func (m *TrustModel) GlobalRanks() ([]float64, int, error) {
	ranks, iters, err := propagation.DefaultEigenTrust().RanksFrom(m.WebOfTrust().Graph(), nil)
	if err != nil {
		return nil, 0, fmt.Errorf("weboftrust: global ranks: %w", err)
	}
	return ranks, iters, nil
}

// GlobalRanksFrom refreshes the EigenTrust vector across an incremental
// update: prev is the parent model's vector (new users pad with the
// uniform prior), and maxIter caps the refresh — the swap delta is small,
// so a handful of warm iterations recovers the ranking where a cold solve
// needs dozens (GlobalRanks). maxIter <= 0 runs to full convergence.
func (m *TrustModel) GlobalRanksFrom(prev []float64, maxIter int) ([]float64, int, error) {
	et := propagation.DefaultEigenTrust()
	if maxIter > 0 {
		et.MaxIter = maxIter
	}
	ranks, iters, err := et.RanksFrom(m.WebOfTrust().Graph(), prev)
	if err != nil {
		return nil, 0, fmt.Errorf("weboftrust: global ranks: %w", err)
	}
	return ranks, iters, nil
}
