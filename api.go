package weboftrust

import (
	"fmt"

	"weboftrust/internal/affinity"
	"weboftrust/internal/core"
	"weboftrust/internal/ratings"
)

// UserID identifies a community member; it aliases the data model's id
// type so facade results interoperate with the internal packages.
type UserID = ratings.UserID

// Dataset is the review-community input; build one with a
// ratings.Builder, a store reader, or the synth generator.
type Dataset = ratings.Dataset

// Ranked pairs a user with a derived trust score.
type Ranked = core.Ranked

// Option customises Derive.
type Option func(*core.Config) error

// WithRiggsIterations caps the Step 1 fixed-point iterations.
func WithRiggsIterations(n int) Option {
	return func(c *core.Config) error {
		if n < 1 {
			return fmt.Errorf("weboftrust: iterations %d < 1", n)
		}
		c.Riggs.MaxIter = n
		return nil
	}
}

// WithoutExperienceDiscount disables the (1 − 1/(n+1)) inexperience
// discount in both reputation models (eqs. 2-3).
func WithoutExperienceDiscount() Option {
	return func(c *core.Config) error {
		c.Riggs.DiscountExperience = false
		c.Reputation.DiscountExperience = false
		return nil
	}
}

// WithUnratedQuality sets the quality assigned to reviews nobody rated
// (default 0).
func WithUnratedQuality(q float64) Option {
	return func(c *core.Config) error {
		if q < 0 || q > 1 {
			return fmt.Errorf("weboftrust: unrated quality %v outside [0,1]", q)
		}
		c.Riggs.UnratedQuality = q
		return nil
	}
}

// WithAffinityRatingsOnly derives affinity from rating activity alone.
func WithAffinityRatingsOnly() Option {
	return func(c *core.Config) error {
		c.AffinityMode = affinity.RatingsOnly
		return nil
	}
}

// WithAffinityWritesOnly derives affinity from writing activity alone.
func WithAffinityWritesOnly() Option {
	return func(c *core.Config) error {
		c.AffinityMode = affinity.WritesOnly
		return nil
	}
}

// WithWorkers caps the goroutines the pipeline fans out to; 0 (the
// default) means one per available CPU and 1 forces serial execution.
// Every stage shards independent work items, so the derived model is
// bitwise-identical at any setting — the knob only trades wall-clock
// time. Update inherits the setting.
func WithWorkers(n int) Option {
	return func(c *core.Config) error {
		if n < 0 {
			return fmt.Errorf("weboftrust: workers %d < 0", n)
		}
		c.Workers = n
		return nil
	}
}

// TrustModel is the derived web of trust for one dataset: a thin,
// query-oriented wrapper around the pipeline's artifacts. It is immutable
// and safe for concurrent use.
type TrustModel struct {
	cfg       core.Config
	dataset   *ratings.Dataset
	artifacts *core.Artifacts
	// scratch carries the reusable Update buffers down the chain of
	// models an ingest loop produces; core.Scratch serialises concurrent
	// use internally.
	scratch *core.Scratch
}

// Derive runs the full three-step pipeline over the dataset.
func Derive(d *Dataset, opts ...Option) (*TrustModel, error) {
	cfg, err := resolveConfig(opts)
	if err != nil {
		return nil, err
	}
	art, err := cfg.Run(d)
	if err != nil {
		return nil, err
	}
	return &TrustModel{cfg: cfg, dataset: d, artifacts: art, scratch: new(core.Scratch)}, nil
}

func resolveConfig(opts []Option) (core.Config, error) {
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// Fingerprint returns the configuration fingerprint Derive(…, opts...)
// would stamp on its model: a stable hash of every option that affects
// derived values (worker count excluded — results are bitwise-identical at
// any parallelism). Persistence layers record it so a checkpoint written
// under one configuration is never restored under another.
func Fingerprint(opts ...Option) (uint64, error) {
	cfg, err := resolveConfig(opts)
	if err != nil {
		return 0, err
	}
	return cfg.Fingerprint(), nil
}

// Restore reassembles a TrustModel from persisted pipeline artifacts — the
// warm-restart path. art must carry the Riggs results and the expertise
// and affinity matrices for d exactly as a Derive with the same opts
// produced them; the derived-trust index is rebuilt deterministically from
// those matrices (see core.RehydrateArtifacts), so the restored model
// serves values bitwise-identical to the Derive it checkpoints, and
// Update continues from it exactly as it would from the original.
func Restore(d *Dataset, art *core.Artifacts, opts ...Option) (*TrustModel, error) {
	if d == nil || art == nil {
		return nil, fmt.Errorf("weboftrust: Restore requires a dataset and artifacts")
	}
	cfg, err := resolveConfig(opts)
	if err != nil {
		return nil, err
	}
	if art.Expertise == nil || art.Expertise.Rows() != d.NumUsers() || art.Expertise.Cols() != d.NumCategories() {
		return nil, fmt.Errorf("weboftrust: Restore artifacts do not match dataset %v", d)
	}
	if art.Trust == nil {
		rebuilt, err := core.RehydrateArtifacts(art.RiggsResults, art.Expertise, art.Affinity, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("weboftrust: Restore: %w", err)
		}
		art = rebuilt
	}
	return &TrustModel{cfg: cfg, dataset: d, artifacts: art, scratch: new(core.Scratch)}, nil
}

// Update derives a new model for a dataset that extends this model's —
// the shape produced by replaying an append-only event log past the
// position this model was built from. It re-solves the Step 1 fixed point
// only for categories touched by the new activity and reuses the rest, so
// it is much cheaper than Derive on the grown dataset while producing
// exactly the same model (it keeps the options Derive was called with).
// The receiver is unchanged and remains valid: readers can keep querying
// it while the replacement is prepared, then swap atomically.
func (m *TrustModel) Update(newD *Dataset) (*TrustModel, error) {
	art, err := m.cfg.UpdateScratch(m.artifacts, m.dataset, newD, m.scratch)
	if err != nil {
		return nil, err
	}
	return &TrustModel{cfg: m.cfg, dataset: newD, artifacts: art, scratch: m.scratch}, nil
}

// Score returns the degree of trust T̂_ij user i holds for user j, in
// [0, 1]. Zero means no overlap between i's interests and j's expertise.
// Single cells are evaluated through the expert-score index (one binary
// search per interest) when i's affinity is narrow relative to the
// category count, and through the dense eq. 5 dot otherwise; both routes
// return the identical value.
func (m *TrustModel) Score(i, j UserID) float64 {
	return m.artifacts.Trust.Value(i, j)
}

// TopTrusted returns the k users with the highest derived trust from user
// u's point of view, best first, excluding u and zero scores. The row is
// evaluated through the sparse expert-score index when u's interests are
// narrow, and ranked with a bounded heap (O(U log k), O(k) working
// memory), so the cost tracks the community's sparsity rather than U·C.
func (m *TrustModel) TopTrusted(u UserID, k int) []Ranked {
	return m.artifacts.Trust.TopTrusted(u, k)
}

// Expertise returns user u's reputation in every category, indexed by
// CategoryID. The returned slice is shared; do not modify it.
func (m *TrustModel) Expertise(u UserID) []float64 {
	return m.artifacts.Expertise.Row(int(u))
}

// Affinity returns user u's affiliation with every category, indexed by
// CategoryID. The returned slice is shared; do not modify it.
func (m *TrustModel) Affinity(u UserID) []float64 {
	return m.artifacts.Affinity.Row(int(u))
}

// ReviewQuality returns the converged quality of a review (eq. 1) and
// whether the review exists.
func (m *TrustModel) ReviewQuality(r ratings.ReviewID) (float64, bool) {
	if int(r) < 0 || int(r) >= m.dataset.NumReviews() {
		return 0, false
	}
	rev := m.dataset.Review(r)
	return m.artifacts.RiggsResults[rev.Category].QualityOf(r)
}

// RaterReputation returns user u's rater reputation in category c (eq. 2)
// and whether u rated anything there.
func (m *TrustModel) RaterReputation(u UserID, c ratings.CategoryID) (float64, bool) {
	if int(c) < 0 || int(c) >= len(m.artifacts.RiggsResults) {
		return 0, false
	}
	return m.artifacts.RiggsResults[c].ReputationOf(u)
}

// Dataset returns the dataset the model was derived from.
func (m *TrustModel) Dataset() *Dataset { return m.dataset }

// Fingerprint returns the configuration fingerprint of the options this
// model was derived (or restored) with; see the package-level Fingerprint.
func (m *TrustModel) Fingerprint() uint64 { return m.cfg.Fingerprint() }

// Artifacts exposes the underlying pipeline artifacts for advanced use
// (binarisation, evaluation, propagation).
func (m *TrustModel) Artifacts() *core.Artifacts { return m.artifacts }
