module weboftrust

go 1.24
