package weboftrust

import (
	"testing"

	"weboftrust/internal/synth"
)

// landmarkRelL1 composes the landmark approximation for every 7th user
// and returns mean and max relative L1 distance from the exact
// traversal, normalised by the exact vector's mass — the same envelope
// measure the pruning and truncation contracts pin.
func landmarkRelL1(t *testing.T, m *TrustModel, sk *LandmarkSketch, n int) (mean, max float64) {
	t.Helper()
	exact := make([]float64, n)
	approx := make([]float64, n)
	samples := 0
	for u := 0; u < n; u += 7 {
		if err := m.PropagateExactInto(sk.Algo, UserID(u), exact); err != nil {
			t.Fatal(err)
		}
		if err := m.ComposeLandmarks(sk, UserID(u), approx); err != nil {
			t.Fatal(err)
		}
		var l1, norm float64
		for i := range exact {
			d := exact[i] - approx[i]
			if d < 0 {
				d = -d
			}
			l1 += d
			norm += exact[i]
		}
		if norm > 0 {
			l1 /= norm
		}
		if l1 > max {
			max = l1
		}
		mean += l1
		samples++
	}
	return mean / float64(samples), max
}

// TestLandmarkComposeErrorEnvelope pins the accuracy contract of the
// `?approx=landmark` mode on the Small community with 16 landmarks: the
// composed vector's relative L1 distance from the exact traversal stays
// inside a measured envelope for every algorithm. The approximation is
// deliberately coarse — it trades accuracy for O(L·U) serving cost — so
// the envelope is wide, but it is PINNED: a regression that makes the
// composition drift (wrong frontier, broken gate, stale sketch) breaks
// this test long before it is visible in a benchmark.
func TestLandmarkComposeErrorEnvelope(t *testing.T) {
	d, _, err := synth.Generate(synth.Small())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	rank, _, err := m.GlobalRanks()
	if err != nil {
		t.Fatal(err)
	}
	ids := SelectLandmarkIDs(rank, 16)
	if len(ids) == 0 {
		t.Fatal("no landmarks selected")
	}
	n := d.NumUsers()
	// Measured on this community: appleseed mean≈0.42/max≈0.94,
	// moletrust mean≈0.32/max≈2.5 (the gate can overshoot a source whose
	// exact reach is tiny), tidaltrust mean≈0.18/max≈0.49. Pinned with
	// ~1.4x headroom.
	bounds := map[PropagationAlgo]struct{ mean, max float64 }{
		PropagateAppleseed:  {0.60, 1.30},
		PropagateMoleTrust:  {0.50, 3.50},
		PropagateTidalTrust: {0.30, 0.70},
	}
	for _, algo := range []PropagationAlgo{PropagateAppleseed, PropagateMoleTrust, PropagateTidalTrust} {
		sk, err := m.BuildLandmarkSketch(algo, ids)
		if err != nil {
			t.Fatal(err)
		}
		mean, max := landmarkRelL1(t, m, sk, n)
		t.Logf("%v: landmark relL1 mean=%.4f max=%.4f", algo, mean, max)
		b := bounds[algo]
		if mean > b.mean {
			t.Errorf("%v: landmark mean relative L1 = %v, bound %v", algo, mean, b.mean)
		}
		if max > b.max {
			t.Errorf("%v: landmark max relative L1 = %v, bound %v", algo, max, b.max)
		}
	}
}

// TestLandmarkSketchSelfVectors pins the sketch build contract: a
// landmark's sketched vector is bitwise-identical to propagating from it
// directly, and selection order follows the rank vector.
func TestLandmarkSketchSelfVectors(t *testing.T) {
	d, _, err := synth.Generate(synth.Small())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	rank, _, err := m.GlobalRanks()
	if err != nil {
		t.Fatal(err)
	}
	ids := SelectLandmarkIDs(rank, 8)
	for i := 1; i < len(ids); i++ {
		a, b := ids[i-1], ids[i]
		if rank[a] < rank[b] || (rank[a] == rank[b] && a > b) {
			t.Fatalf("selection %v not rank-descending at %d", ids, i)
		}
	}
	sk, err := m.BuildLandmarkSketch(PropagateAppleseed, ids)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, d.NumUsers())
	for i, id := range sk.Landmarks() {
		if err := m.PropagateInto(PropagateAppleseed, UserID(id), want); err != nil {
			t.Fatal(err)
		}
		vec := sk.Vector(i)
		for v := range want {
			if vec[v] != want[v] {
				t.Fatalf("landmark %d vec[%d] = %v, direct propagation %v", id, v, vec[v], want[v])
			}
		}
	}
}

// TestRefreshLandmarkSketchCarry pins the refresh rules: untainted
// still-selected landmarks carry their vector by reference, tainted ones
// recompute, and a nil taint set (or an algorithm change) recomputes
// everything.
func TestRefreshLandmarkSketchCarry(t *testing.T) {
	d, _, err := synth.Generate(synth.Small())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	rank, _, err := m.GlobalRanks()
	if err != nil {
		t.Fatal(err)
	}
	ids := SelectLandmarkIDs(rank, 6)
	if len(ids) < 2 {
		t.Fatal("need at least two landmarks")
	}
	prev, err := m.BuildLandmarkSketch(PropagateMoleTrust, ids)
	if err != nil {
		t.Fatal(err)
	}
	tainted := make([]bool, d.NumUsers())
	tainted[ids[0]] = true
	ref, err := m.RefreshLandmarkSketch(prev, PropagateMoleTrust, ids, tainted)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		pv, rv := prev.Vector(i), ref.Vector(i)
		shared := len(pv) > 0 && len(rv) > 0 && &pv[0] == &rv[0]
		if i == 0 && shared {
			t.Error("tainted landmark carried by reference instead of recomputing")
		}
		if i > 0 && !shared {
			t.Errorf("untainted landmark %d recomputed instead of carrying", ids[i])
		}
		// Same model either way, so values agree exactly.
		for v := range pv {
			if pv[v] != rv[v] {
				t.Fatalf("landmark %d vec[%d] changed across refresh: %v -> %v", ids[i], v, pv[v], rv[v])
			}
		}
	}
	// nil tainted recomputes everything.
	full, err := m.RefreshLandmarkSketch(prev, PropagateMoleTrust, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		pv, fv := prev.Vector(i), full.Vector(i)
		if len(pv) > 0 && len(fv) > 0 && &pv[0] == &fv[0] {
			t.Errorf("nil taint set carried landmark %d by reference", ids[i])
		}
	}
	// Algorithm mismatch never carries.
	cross, err := m.RefreshLandmarkSketch(prev, PropagateTidalTrust, ids, make([]bool, d.NumUsers()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		pv, cv := prev.Vector(i), cross.Vector(i)
		if len(pv) > 0 && len(cv) > 0 && &pv[0] == &cv[0] {
			t.Errorf("algo change carried landmark %d by reference", ids[i])
		}
	}
	// Out-of-range landmark ids are rejected.
	if _, err := m.BuildLandmarkSketch(PropagateMoleTrust, []int32{int32(d.NumUsers())}); err == nil {
		t.Error("out-of-range landmark accepted")
	}
}
